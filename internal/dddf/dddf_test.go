package dddf

import (
	"sync/atomic"
	"testing"
	"time"

	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/netsim"
)

func runSpaces(t *testing.T, ranks, workers int, home HomeFunc, size SizeFunc, body func(s *Space, ctx *hc.Ctx)) {
	t.Helper()
	runSpacesNet(t, ranks, workers, netsim.Loopback, home, size, body)
}

func runSpacesNet(t *testing.T, ranks, workers int, p netsim.Params, home HomeFunc, size SizeFunc, body func(s *Space, ctx *hc.Ctx)) {
	t.Helper()
	w := mpi.NewWorld(ranks, mpi.WithNetwork(p))
	w.Run(func(c *mpi.Comm) {
		n := hcmpi.NewNode(c, hcmpi.Config{Workers: workers})
		s := NewSpace(n, home, size)
		n.Main(func(ctx *hc.Ctx) { body(s, ctx) })
		n.Close()
	})
}

func cyclicHome(nproc int) HomeFunc {
	return func(guid int64) int { return int(guid % int64(nproc)) }
}

func TestLocalPutGet(t *testing.T) {
	runSpaces(t, 2, 2, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		guid := int64(s.Node().Rank()) // each rank homes its own guid
		h := s.Handle(guid)
		if !h.IsHome() {
			t.Errorf("rank %d not home of guid %d", s.Node().Rank(), guid)
		}
		if h.Full() {
			t.Error("fresh handle full")
		}
		if _, err := h.Get(); err == nil {
			t.Error("Get before put did not error")
		}
		h.Put(ctx, []byte{byte(guid), 2, 3})
		got := h.MustGet()
		if len(got) != 3 || got[0] != byte(guid) {
			t.Errorf("got %v", got)
		}
	})
}

func TestRemoteAwaitReceivesData(t *testing.T) {
	runSpacesNet(t, 2, 2, netsim.Params{InterLatency: 50 * time.Microsecond},
		cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
			h := s.Handle(0) // home = rank 0
			switch s.Node().Rank() {
			case 0:
				h.Put(ctx, []byte("payload"))
			case 1:
				done := make(chan []byte, 1)
				ctx.Finish(func(ctx *hc.Ctx) {
					s.AsyncAwait(ctx, func(*hc.Ctx) {
						done <- h.MustGet()
					}, h)
				})
				if got := <-done; string(got) != "payload" {
					t.Errorf("remote value %q", got)
				}
			}
		})
}

func TestAwaitBeforePutAndAfterPut(t *testing.T) {
	// One awaiter registers before the home's put, another after; both
	// must see the value, and the transfer must happen at most once.
	runSpaces(t, 2, 2, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		early := s.Handle(100) // home rank 0
		late := s.Handle(102)  // home rank 0 (102%2==0)
		switch s.Node().Rank() {
		case 0:
			// Wait for rank 1's early registration to be plausible, then put.
			time.Sleep(2 * time.Millisecond)
			early.Put(ctx, []byte{1})
			late.Put(ctx, []byte{2})
			s.Node().Barrier(ctx)
		case 1:
			var got1, got2 atomic.Int32
			ctx.Finish(func(ctx *hc.Ctx) {
				s.AsyncAwait(ctx, func(*hc.Ctx) { got1.Store(int32(early.MustGet()[0])) }, early)
			})
			s.Node().Barrier(ctx) // puts done
			ctx.Finish(func(ctx *hc.Ctx) {
				s.AsyncAwait(ctx, func(*hc.Ctx) { got2.Store(int32(late.MustGet()[0])) }, late)
			})
			if got1.Load() != 1 || got2.Load() != 2 {
				t.Errorf("got %d,%d", got1.Load(), got2.Load())
			}
		}
		if s.Node().Rank() == 0 {
			return
		}
	})
}

func TestCachedCopySecondAwaitImmediate(t *testing.T) {
	runSpaces(t, 2, 1, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		h := s.Handle(0)
		if s.Node().Rank() == 0 {
			h.Put(ctx, []byte("x"))
		}
		s.Node().Barrier(ctx)
		if s.Node().Rank() == 1 {
			ctx.Finish(func(ctx *hc.Ctx) {
				s.AsyncAwait(ctx, func(*hc.Ctx) {}, h)
			})
			reg0, _ := s.Stats()
			// Second await: value cached, no new registration.
			ctx.Finish(func(ctx *hc.Ctx) {
				s.AsyncAwait(ctx, func(*hc.Ctx) {
					if string(h.MustGet()) != "x" {
						t.Error("cache miss")
					}
				}, h)
			})
			reg1, _ := s.Stats()
			if reg1 != reg0 {
				t.Errorf("second await sent another registration (%d -> %d)", reg0, reg1)
			}
			if reg1 != 1 {
				t.Errorf("registersSent = %d want 1", reg1)
			}
		}
		s.Node().Barrier(ctx)
	})
}

func TestTransferAtMostOncePerRemote(t *testing.T) {
	const ranks = 3
	runSpaces(t, ranks, 2, cyclicHome(ranks), nil, func(s *Space, ctx *hc.Ctx) {
		h := s.Handle(0)
		if s.Node().Rank() == 0 {
			h.Put(ctx, []byte("once"))
		}
		s.Node().Barrier(ctx)
		if s.Node().Rank() != 0 {
			// Many awaits on the same remote guid from many tasks.
			ctx.Finish(func(ctx *hc.Ctx) {
				for i := 0; i < 8; i++ {
					s.AsyncAwait(ctx, func(*hc.Ctx) {
						if string(h.MustGet()) != "once" {
							t.Error("bad value")
						}
					}, h)
				}
			})
			reg, _ := s.Stats()
			if reg > 1 {
				t.Errorf("rank %d sent %d registrations for one guid", s.Node().Rank(), reg)
			}
		}
		s.Node().Barrier(ctx)
		if s.Node().Rank() == 0 {
			_, dataSent := s.Stats()
			if dataSent > ranks-1 {
				t.Errorf("home transferred %d times for %d remotes", dataSent, ranks-1)
			}
		}
	})
}

func TestRemotePutForwardsHome(t *testing.T) {
	runSpaces(t, 2, 2, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		h := s.Handle(0) // home rank 0
		switch s.Node().Rank() {
		case 1:
			h.Put(ctx, []byte("from-remote")) // put performed away from home
			s.Node().Barrier(ctx)
		case 0:
			done := make(chan struct{})
			ctx.Finish(func(ctx *hc.Ctx) {
				s.AsyncAwait(ctx, func(*hc.Ctx) {
					if string(h.MustGet()) != "from-remote" {
						t.Errorf("home saw %q", h.MustGet())
					}
					close(done)
				}, h)
			})
			<-done
			s.Node().Barrier(ctx)
		}
	})
}

func TestSizeFuncValidation(t *testing.T) {
	size := func(guid int64) int { return 4 }
	runSpaces(t, 1, 1, cyclicHome(1), size, func(s *Space, ctx *hc.Ctx) {
		h := s.Handle(7)
		if err := h.TryPut(ctx, []byte{1, 2, 3}); err == nil {
			t.Error("wrong-size put accepted")
		}
		if err := h.TryPut(ctx, []byte{1, 2, 3, 4}); err != nil {
			t.Errorf("right-size put rejected: %v", err)
		}
	})
}

func TestDoublePutIsError(t *testing.T) {
	runSpaces(t, 1, 1, cyclicHome(1), nil, func(s *Space, ctx *hc.Ctx) {
		h := s.Handle(1)
		h.Put(ctx, []byte{1})
		if err := h.TryPut(ctx, []byte{2}); err == nil {
			t.Error("double put accepted")
		}
	})
}

func TestGuidAccessors(t *testing.T) {
	runSpaces(t, 2, 1, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		h := s.Handle(5)
		if h.Guid() != 5 || h.Home() != 1 {
			t.Errorf("guid %d home %d", h.Guid(), h.Home())
		}
		if h.DDF() == nil {
			t.Error("nil local DDF")
		}
	})
}

// TestSmithWatermanShape runs the paper's Fig. 9 program shape: a 2D
// wavefront of DDDFs distributed cyclically by row-major guid.
func TestSmithWatermanShape(t *testing.T) {
	const ranks = 3
	const H, W = 8, 9
	home := cyclicHome(ranks)
	runSpaces(t, ranks, 2, home, nil, func(s *Space, ctx *hc.Ctx) {
		guid := func(i, j int) int64 { return int64(i*W + j) }
		handle := func(i, j int) *Handle { return s.Handle(guid(i, j)) }
		me := s.Node().Rank()

		ctx.Finish(func(ctx *hc.Ctx) {
			for i := 0; i < H; i++ {
				for j := 0; j < W; j++ {
					i, j := i, j
					isHome := home(guid(i, j)) == me
					if !isHome {
						continue
					}
					curr := handle(i, j)
					if i == 0 && j == 0 {
						curr.Put(ctx, []byte{0})
						continue
					}
					var deps []*Handle
					if i > 0 {
						deps = append(deps, handle(i-1, j))
					}
					if j > 0 {
						deps = append(deps, handle(i, j-1))
					}
					if i > 0 && j > 0 {
						deps = append(deps, handle(i-1, j-1))
					}
					s.AsyncAwait(ctx, func(ctx *hc.Ctx) {
						best := byte(0)
						for _, d := range deps {
							if v := d.MustGet()[0]; v > best {
								best = v
							}
						}
						curr.Put(ctx, []byte{best + 1})
					}, deps...)
				}
			}
		})
		s.Node().Barrier(ctx)
		// Every rank can now await the final cell and check i+j recurrence.
		last := handle(H-1, W-1)
		done := make(chan byte, 1)
		ctx.Finish(func(ctx *hc.Ctx) {
			s.AsyncAwait(ctx, func(*hc.Ctx) { done <- last.MustGet()[0] }, last)
		})
		if got := <-done; got != H-1+W-1 {
			t.Errorf("rank %d: corner = %d want %d", me, got, H-1+W-1)
		}
		s.Node().Barrier(ctx)
	})
}

func TestAsyncAwaitPlusMixedDependencies(t *testing.T) {
	// Mixed local DDF + remote handle await (the LU pattern).
	runSpaces(t, 2, 2, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		remote := s.Handle(0) // home rank 0
		if s.Node().Rank() == 0 {
			remote.Put(ctx, []byte{11})
			s.Node().Barrier(ctx)
			return
		}
		local := hc.NewDDF()
		var got atomic.Int32
		ctx.Finish(func(ctx *hc.Ctx) {
			s.AsyncAwaitPlus(ctx, func(*hc.Ctx) {
				got.Store(int32(remote.MustGet()[0]) + int32(local.MustGet().(int)))
			}, []*hc.DDF{local}, remote)
			ctx.Async(func(ctx *hc.Ctx) { local.Put(ctx, 31) })
		})
		if got.Load() != 42 {
			t.Errorf("mixed await got %d", got.Load())
		}
		s.Node().Barrier(ctx)
	})
}

func TestMustGetPanicsOnRemoteEmpty(t *testing.T) {
	runSpaces(t, 2, 1, cyclicHome(2), nil, func(s *Space, ctx *hc.Ctx) {
		if s.Node().Rank() != 1 {
			return
		}
		h := s.Handle(0) // remote, never put
		defer func() {
			if recover() == nil {
				t.Error("MustGet on empty remote handle did not panic")
			}
		}()
		h.MustGet()
	})
}
