// Package dddf implements distributed data-driven futures (DDDFs), the
// paper's Asynchronous Partitioned Global Name Space (APGNS) programming
// model: single-assignment futures with globally unique ids (guids),
// addressable from every rank with no MPI knowledge.
//
// Every guid has a home rank given by the user's DDF_HOME function. The
// home is responsible for transferring the value to remote awaiters: the
// first await on a remote guid sends the home a registration message; the
// home answers with the data as soon as its put has happened (immediately,
// if it already has), and the remote caches the value so every subsequent
// await and get succeeds locally. The single-assignment property makes the
// cache trivially coherent, and home-to-remote transfer happens at most
// once per remote node (paper §III-B).
//
// All protocol traffic flows through the HCMPI communication worker:
// registration requests and data responses are reserved-tag messages
// handled by listener tasks.
package dddf

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
)

// Reserved tags for the DDDF wire protocol, drawn from the module-wide
// registry in internal/mpi/tags.go.
const (
	tagRegister = mpi.TagDDDFRegister // payload: guid — "send me guid's value when put"
	tagData     = mpi.TagDDDFData     // payload: guid ++ value
	tagPutFwd   = mpi.TagDDDFPutFwd   // payload: guid ++ value — remote put forwarded home
)

// HomeFunc maps a guid to its home rank (DDF_HOME).
type HomeFunc func(guid int64) int

// SizeFunc reports the put size for a guid (DDF_SIZE). It is advisory in
// this implementation — payloads carry their own length — but is checked
// on put when provided.
type SizeFunc func(guid int64) int

// Space is one rank's view of the distributed DDF namespace.
type Space struct {
	node *hcmpi.Node
	home HomeFunc
	size SizeFunc

	mu      sync.Mutex
	entries map[int64]*entry

	// stats (atomic: bumped from computation workers and the comm worker)
	registersSent atomic.Int64
	dataSent      atomic.Int64
}

// entry tracks one guid on this rank.
type entry struct {
	ddf        *hc.DDF
	registered bool  // remote side: registration sent to home
	pending    []int // home side: ranks awaiting the put
}

// NewSpace creates the namespace handler on this rank and installs its
// protocol listeners on the communication worker. home must be available
// (and agree) on all ranks, as the paper requires of DDF_HOME/DDF_SIZE.
func NewSpace(n *hcmpi.Node, home HomeFunc, size SizeFunc) *Space {
	s := &Space{node: n, home: home, size: size, entries: make(map[int64]*entry)}
	n.Listen(tagRegister, s.onRegister)
	n.Listen(tagData, s.onData)
	n.Listen(tagPutFwd, s.onPutFwd)
	return s
}

// Handle returns this rank's handle on the DDDF identified by guid
// (DDF_HANDLE). The call always returns a local handle, wherever the home
// is.
func (s *Space) Handle(guid int64) *Handle {
	s.mu.Lock()
	e := s.entryLocked(guid)
	s.mu.Unlock()
	return &Handle{s: s, guid: guid, e: e}
}

func (s *Space) entryLocked(guid int64) *entry {
	e, ok := s.entries[guid]
	if !ok {
		e = &entry{ddf: hc.NewDDF()}
		s.entries[guid] = e
	}
	return e
}

// Handle is a local handle on one DDDF.
type Handle struct {
	s    *Space
	guid int64
	e    *entry
}

// Guid returns the handle's globally unique id.
func (h *Handle) Guid() int64 { return h.guid }

// Home returns the guid's home rank.
func (h *Handle) Home() int { return h.s.home(h.guid) }

// IsHome reports whether this rank is the guid's home.
func (h *Handle) IsHome() bool { return h.Home() == h.s.node.Rank() }

// DDF exposes the local single-assignment cell (for await clauses).
func (h *Handle) DDF() *hc.DDF { return h.e.ddf }

// Put writes the DDDF's value (DDF_PUT). On the home rank it releases
// local awaiters, satisfies already-arrived remote registrations, and
// leaves a listener answering future ones. On a remote rank the put is
// forwarded to the home (and cached locally). A second put anywhere is a
// program error.
func (h *Handle) Put(ctx *hc.Ctx, data []byte) {
	if err := h.TryPut(ctx, data); err != nil {
		panic(err)
	}
}

// TryPut is Put returning the single-assignment violation as an error.
func (h *Handle) TryPut(ctx *hc.Ctx, data []byte) error {
	if s := h.s.size; s != nil {
		if want := s(h.guid); want != len(data) {
			return fmt.Errorf("dddf: put of %d bytes on guid %d, DDF_SIZE says %d", len(data), h.guid, want)
		}
	}
	if h.IsHome() {
		return h.s.homePut(ctx, h.guid, data)
	}
	// Remote put: cache locally, then forward to home, which serves
	// everyone else.
	if err := h.e.ddf.TryPut(ctx, data); err != nil {
		return err
	}
	h.s.node.SendReserved(encodeGuidData(h.guid, data), h.Home(), tagPutFwd)
	return nil
}

// homePut performs the home-side put: release local awaiters and answer
// pending remote registrations.
func (s *Space) homePut(ctx *hc.Ctx, guid int64, data []byte) error {
	s.mu.Lock()
	e := s.entryLocked(guid)
	if err := e.ddf.TryPut(ctx, data); err != nil {
		s.mu.Unlock()
		return err
	}
	pending := e.pending
	e.pending = nil
	s.mu.Unlock()
	for _, r := range pending {
		s.dataSent.Add(1)
		s.node.SendReserved(encodeGuidData(guid, data), r, tagData)
	}
	return nil
}

// Get returns the locally available value (DDF_GET). As in the
// shared-memory model it is non-blocking: reading before the value is
// locally available is a program error — await the handle first.
func (h *Handle) Get() ([]byte, error) {
	v, err := h.e.ddf.Get()
	if err != nil {
		return nil, fmt.Errorf("dddf: guid %d: %w", h.guid, err)
	}
	return v.([]byte), nil
}

// MustGet is Get panicking on error; safe inside a task that awaited the
// handle.
func (h *Handle) MustGet() []byte {
	v, err := h.Get()
	if err != nil {
		panic(err)
	}
	return v
}

// Full reports whether the value is locally available.
func (h *Handle) Full() bool { return h.e.ddf.Full() }

// AsyncAwait spawns fn once every listed handle's value is locally
// available, registering with remote homes as needed (the paper's
// async await over DDDFs).
func (s *Space) AsyncAwait(ctx *hc.Ctx, fn func(*hc.Ctx), hs ...*Handle) {
	ddfs := make([]*hc.DDF, len(hs))
	for i, h := range hs {
		s.register(h)
		ddfs[i] = h.e.ddf
	}
	ctx.AsyncAwait(fn, ddfs...)
}

// AsyncAwaitPlus is AsyncAwait with additional local shared-memory DDF
// dependencies: fn runs once every listed handle AND every local DDF has
// been put. Dataflow applications mix the two constantly (e.g. tiled LU:
// a tile's local update chain plus remote panel tiles).
func (s *Space) AsyncAwaitPlus(ctx *hc.Ctx, fn func(*hc.Ctx), locals []*hc.DDF, hs ...*Handle) {
	ddfs := make([]*hc.DDF, 0, len(locals)+len(hs))
	ddfs = append(ddfs, locals...)
	for _, h := range hs {
		s.register(h)
		ddfs = append(ddfs, h.e.ddf)
	}
	ctx.AsyncAwait(fn, ddfs...)
}

// register sends the home a one-time registration for a remote, still
// empty handle.
func (s *Space) register(h *Handle) {
	if h.IsHome() || h.e.ddf.Full() {
		return
	}
	s.mu.Lock()
	if h.e.registered {
		s.mu.Unlock()
		return
	}
	h.e.registered = true
	s.registersSent.Add(1)
	s.mu.Unlock()
	s.node.SendReserved(encodeGuid(h.guid), h.Home(), tagRegister)
}

// --- listener callbacks (run on the communication worker) ---

// onRegister handles a remote rank's interest in a local guid.
func (s *Space) onRegister(src int, payload []byte) {
	guid := decodeGuid(payload)
	s.mu.Lock()
	e := s.entryLocked(guid)
	if e.ddf.Full() {
		data := e.ddf.MustGet().([]byte)
		s.dataSent.Add(1)
		s.mu.Unlock()
		s.node.SendReserved(encodeGuidData(guid, data), src, tagData)
		return
	}
	e.pending = append(e.pending, src)
	s.mu.Unlock()
}

// onData handles the home's data response: fill the local cache,
// releasing awaiting DDTs onto the communication worker's deque.
func (s *Space) onData(_ int, payload []byte) {
	guid, data := decodeGuidData(payload)
	s.mu.Lock()
	e := s.entryLocked(guid)
	s.mu.Unlock()
	// The transfer happens at most once, so a second data message for the
	// same guid is a protocol error worth surfacing loudly.
	if err := e.ddf.PutVia(s.node, data); err != nil {
		panic(fmt.Sprintf("dddf: duplicate data transfer for guid %d", guid))
	}
}

// onPutFwd handles a put performed on a remote rank.
func (s *Space) onPutFwd(src int, payload []byte) {
	guid, data := decodeGuidData(payload)
	s.mu.Lock()
	e := s.entryLocked(guid)
	if err := e.ddf.PutVia(s.node, data); err != nil {
		s.mu.Unlock()
		panic(fmt.Sprintf("dddf: double put on guid %d (forwarded from rank %d)", guid, src))
	}
	pending := e.pending
	e.pending = nil
	s.mu.Unlock()
	for _, r := range pending {
		if r == src {
			continue // the putter already has the value
		}
		s.dataSent.Add(1)
		s.node.SendReserved(encodeGuidData(guid, data), r, tagData)
	}
}

// Node returns the HCMPI node this space runs on.
func (s *Space) Node() *hcmpi.Node { return s.node }

// Stats reports protocol traffic from this rank.
func (s *Space) Stats() (registersSent, dataSent int64) {
	return s.registersSent.Load(), s.dataSent.Load()
}

// --- wire encoding ---

func encodeGuid(guid int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(guid))
	return b
}

func decodeGuid(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func encodeGuidData(guid int64, data []byte) []byte {
	b := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint64(b, uint64(guid))
	copy(b[8:], data)
	return b
}

func decodeGuidData(b []byte) (int64, []byte) {
	return int64(binary.LittleEndian.Uint64(b)), b[8:]
}
