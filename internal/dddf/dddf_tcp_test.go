package dddf

import (
	"net"
	"sync"
	"testing"

	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
)

// The DDDF protocol over the real TCP transport: registration and data
// messages cross actual sockets, proving the APGNS layer is
// transport-agnostic end to end.
func TestDDDFOverTCP(t *testing.T) {
	const ranks = 3
	addrs := make([]string, ranks)
	lns := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}

	home := func(guid int64) int { return int(guid % ranks) }
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := map[int]string{}
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, closer, err := mpi.Distributed(r, addrs)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			n := hcmpi.NewNode(c, hcmpi.Config{Workers: 2})
			s := NewSpace(n, home, nil)
			n.Main(func(ctx *hc.Ctx) {
				// Rank 0 homes guid 0; everyone awaits it.
				h := s.Handle(0)
				if r == 0 {
					h.Put(ctx, []byte("dddf-over-tcp"))
				}
				done := make(chan struct{})
				ctx.Finish(func(ctx *hc.Ctx) {
					s.AsyncAwait(ctx, func(*hc.Ctx) {
						mu.Lock()
						results[r] = string(h.MustGet())
						mu.Unlock()
						close(done)
					}, h)
				})
				<-done
			})
			n.Close()
			closer.Close()
		}(r)
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		if results[r] != "dddf-over-tcp" {
			t.Fatalf("rank %d saw %q", r, results[r])
		}
	}
}
