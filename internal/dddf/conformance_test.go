package dddf

import (
	"fmt"
	"sync"
	"testing"

	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/mpi/mpitest"
)

// Cross-transport conformance for the DDDF (APGNS) protocol: the corpus
// runs over every mpitest backend, so registration, data, and
// put-forwarding messages are proven equivalent whether they cross the
// netsim pipes or real sockets.

type dddfCase struct {
	name  string
	ranks int
	body  func(t *testing.T, s *Space, ctx *hc.Ctx)
}

func dddfCorpus() []dddfCase {
	return []dddfCase{
		{"RemoteAwait", 3, confDDDFRemoteAwait},
		{"RemotePutForwardsHome", 3, confDDDFRemotePut},
		{"ManyGuidsAllRanks", 4, confDDDFManyGuids},
	}
}

func TestDDDFConformance(t *testing.T) {
	for _, b := range mpitest.Backends() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, tc := range dddfCorpus() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					home := func(guid int64) int { return int(guid) % tc.ranks }
					b.Run(t, tc.ranks, func(c *mpi.Comm) {
						n := hcmpi.NewNode(c, hcmpi.Config{Workers: 2})
						s := NewSpace(n, home, nil)
						n.Main(func(ctx *hc.Ctx) { tc.body(t, s, ctx) })
						n.Close()
					})
				})
			}
		})
	}
}

// confDDDFRemoteAwait: one home rank puts, every rank awaits and reads.
func confDDDFRemoteAwait(t *testing.T, s *Space, ctx *hc.Ctx) {
	h := s.Handle(0)
	if h.IsHome() {
		h.Put(ctx, []byte("dddf-conformance"))
	}
	done := make(chan string, 1)
	ctx.Finish(func(ctx *hc.Ctx) {
		s.AsyncAwait(ctx, func(*hc.Ctx) { done <- string(h.MustGet()) }, h)
	})
	if got := <-done; got != "dddf-conformance" {
		t.Errorf("rank %d read %q", s.Node().Rank(), got)
	}
}

// confDDDFRemotePut: a non-home rank puts; the value still becomes
// visible everywhere (the put forwards to the guid's home first).
func confDDDFRemotePut(t *testing.T, s *Space, ctx *hc.Ctx) {
	h := s.Handle(1) // homed on rank 1
	if s.Node().Rank() == 2 {
		h.Put(ctx, []byte("forwarded"))
	}
	done := make(chan string, 1)
	ctx.Finish(func(ctx *hc.Ctx) {
		s.AsyncAwait(ctx, func(*hc.Ctx) { done <- string(h.MustGet()) }, h)
	})
	if got := <-done; got != "forwarded" {
		t.Errorf("rank %d read %q", s.Node().Rank(), got)
	}
}

// confDDDFManyGuids: every rank homes and fills one guid; every rank
// awaits all of them (all-to-all registration and data traffic).
func confDDDFManyGuids(t *testing.T, s *Space, ctx *hc.Ctx) {
	p := s.Node().Size()
	me := s.Node().Rank()
	hs := make([]*Handle, p)
	for g := 0; g < p; g++ {
		hs[g] = s.Handle(int64(g))
	}
	hs[me].Put(ctx, []byte(fmt.Sprintf("from-%d", me)))
	var mu sync.Mutex
	got := make(map[int64]string)
	ctx.Finish(func(ctx *hc.Ctx) {
		for _, h := range hs {
			h := h
			s.AsyncAwait(ctx, func(*hc.Ctx) {
				mu.Lock()
				got[h.Guid()] = string(h.MustGet())
				mu.Unlock()
			}, h)
		}
	})
	for g := 0; g < p; g++ {
		if want := fmt.Sprintf("from-%d", g); got[int64(g)] != want {
			t.Errorf("rank %d guid %d: %q want %q", me, g, got[int64(g)], want)
		}
	}
}
