package harness

import (
	"fmt"

	"hcmpi/internal/sim/model"
	"hcmpi/internal/uts"
)

// Summary is an acceptance pass over the paper's headline claims: each
// check re-runs a small experiment and asserts the qualitative shape —
// who wins, which direction costs grow, where crossovers sit. It is the
// EXPERIMENTS.md ledger, executable.
func Summary(o Options) []*Table {
	t := &Table{
		Title:  "Acceptance summary: the paper's headline shapes",
		Header: []string{"#", "claim (paper §)", "verdict", "evidence"},
	}
	add := func(claim string, ok bool, evidence string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", len(t.Rows)+1), claim, verdict, evidence})
	}
	cm := model.DefaultCosts()

	// 1. Fig 14a: bandwidth parity.
	m8 := model.ThreadBenchMPI(8, cm)
	h8 := model.ThreadBenchHCMPI(8, cm)
	r := m8.BandwidthGbps / h8.BandwidthGbps
	add("bandwidth equal, MPI vs HCMPI (IV-A)", r > 0.8 && r < 1.25,
		fmt.Sprintf("%.1f vs %.1f Gb/s", m8.BandwidthGbps, h8.BandwidthGbps))

	// 2. Fig 14b: rate collapse and crossover.
	m1 := model.ThreadBenchMPI(1, cm)
	h1 := model.ThreadBenchHCMPI(1, cm)
	add("multithreaded-MPI msg rate collapses with threads; HCMPI flat (IV-A)",
		m8.MsgRateM < m1.MsgRateM/3 && h8.MsgRateM > h1.MsgRateM*0.8 && h8.MsgRateM > m8.MsgRateM,
		fmt.Sprintf("MPI %.2f→%.2f M/s, HCMPI %.2f→%.2f M/s", m1.MsgRateM, m8.MsgRateM, h1.MsgRateM, h8.MsgRateM))

	// 3. Fig 14c: latency growth ordering.
	add("MPI latency degrades faster with threads than HCMPI (IV-A)",
		m8.LatencyUS[1024]/m1.LatencyUS[1024] > h8.LatencyUS[1024]/h1.LatencyUS[1024],
		fmt.Sprintf("growth %.1fx vs %.1fx", m8.LatencyUS[1024]/m1.LatencyUS[1024], h8.LatencyUS[1024]/h1.LatencyUS[1024]))

	// 4. Table II ordering at 8 cores/node.
	bm := model.SyncBench(model.SyncMPI, model.Barrier, 16, 8, cm)
	bh := model.SyncBench(model.SyncHybridStrict, model.Barrier, 16, 8, cm)
	bp := model.SyncBench(model.SyncHCMPIStrict, model.Barrier, 16, 8, cm)
	bf := model.SyncBench(model.SyncHCMPIFuzzy, model.Barrier, 16, 8, cm)
	add("barriers: HCMPI < hybrid < MPI; fuzzy <= strict (Table II)",
		bp < bh && bh < bm && bf <= bp*1.05,
		fmt.Sprintf("MPI %.1f, hybrid %.1f, strict %.1f, fuzzy %.1f µs", bm, bh, bp, bf))

	// 5. Table II reductions.
	rm := model.SyncBench(model.SyncMPI, model.Reduction, 16, 8, cm)
	rh := model.SyncBench(model.SyncHybridStrict, model.Reduction, 16, 8, cm)
	ra := model.SyncBench(model.SyncHCMPIFuzzy, model.Reduction, 16, 8, cm)
	add("reductions: accumulator < hybrid < MPI (Table II)", ra < rh && rh < rm,
		fmt.Sprintf("MPI %.1f, hybrid %.1f, accum %.1f µs", rm, rh, ra))

	// 6-8. UTS (small fast grid).
	up := model.DefaultUTSParams(uts.T1Med)
	mLow := model.UTSRunMPI(4, 2, up)
	hLow := model.UTSRunHCMPI(4, 2, up)
	mHi := model.UTSRunMPI(16, 16, up)
	hHi := model.UTSRunHCMPI(16, 16, up)
	yHi := model.UTSRunHybrid(16, 16, up)
	add("UTS: HCMPI loses at 2 cores/node, wins big at 16 (Figs 20/21)",
		hLow.Makespan > mLow.Makespan && float64(mHi.Makespan)/float64(hHi.Makespan) > 3,
		fmt.Sprintf("4n/2c speedup %.2f; 16n/16c speedup %.2f",
			float64(mLow.Makespan)/float64(hLow.Makespan), float64(mHi.Makespan)/float64(hHi.Makespan)))
	add("UTS: failed steals orders of magnitude higher for MPI (Table III)",
		mHi.Fails > 10*hHi.Fails,
		fmt.Sprintf("%d vs %d", mHi.Fails, hHi.Fails))
	add("UTS: hybrid sits between MPI and HCMPI at scale (Fig 22)",
		hHi.Makespan < yHi.Makespan && yHi.Makespan < mHi.Makespan,
		fmt.Sprintf("HCMPI %.3fs < hybrid %.3fs < MPI %.3fs",
			hHi.Makespan.Seconds(), yHi.Makespan.Seconds(), mHi.Makespan.Seconds()))

	// 9. Table IV magnitude.
	sp := model.DefaultSWParams()
	sw82 := model.SWRunDDDF(8, 2, sp).Seconds()
	add("SW DDDF at 8n/2c within 40% of the paper's 1955s (Table IV)",
		sw82 > 1955*0.6 && sw82 < 1955*1.4, fmt.Sprintf("%.0fs", sw82))

	// 10. Fig 25 crossover.
	f25 := model.Fig25SWParams()
	f25h := f25
	f25h.Cfg.OuterH, f25h.Cfg.OuterW = 5800, 6000
	d2 := model.SWRunDDDF(4, 2, f25)
	y2 := model.SWRunHybrid(4, 2, f25h)
	d12 := model.SWRunDDDF(4, 12, f25)
	y12 := model.SWRunHybrid(4, 12, f25h)
	add("SW: hybrid wins at 2 cores/node, DDDF beyond ~6 (Fig 25)",
		y2 < d2 && d12 < y12,
		fmt.Sprintf("ratios %.2f at 2c, %.2f at 12c", float64(y2)/float64(d2), float64(y12)/float64(d12)))

	// 11. Tree phaser ablation.
	flat := model.SyncBenchPhaser(8, 64, cm, true)
	tree := model.SyncBenchPhaser(8, 64, cm, false)
	add("tree phasers scale much better than flat (III-A)", tree < flat*0.7,
		fmt.Sprintf("%.1f vs %.1f µs at 64 tasks", tree, flat))

	return []*Table{t}
}
