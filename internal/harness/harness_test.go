package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "table2", "table3", "table4", "fig25",
		"ablation-commworker", "ablation-chunking"}
	for _, n := range want {
		if _, ok := Experiments[n]; !ok {
			t.Errorf("experiment %q missing", n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", Options{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig14Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig14", Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bandwidth", "message rate", "latency", "paper MPI"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fig14 output missing %q", want)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table2", Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HCMPI Accumulator") {
		t.Error("table2 output incomplete")
	}
}

func TestFig25Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig25", Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Smith-Waterman") {
		t.Error("fig25 output incomplete")
	}
}

func TestSummaryAllPass(t *testing.T) {
	tables := Summary(Options{})
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, row := range tables[0].Rows {
		if row[2] != "PASS" {
			t.Errorf("claim %s %q: %s (%s)", row[0], row[1], row[2], row[3])
		}
	}
	if len(tables[0].Rows) < 11 {
		t.Fatalf("only %d claims checked", len(tables[0].Rows))
	}
}

func TestFastExperimentsRender(t *testing.T) {
	// Cover the remaining runners that execute in a few seconds.
	for _, id := range []string{"fig25", "table4", "ablation-phasertree"} {
		var buf bytes.Buffer
		if err := Run(id, Options{}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestUTSScalingRunnersSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("UTS sweeps are seconds-scale")
	}
	// fig18/fig19 (HCMPI) are the fast halves of the UTS figures.
	for _, id := range []string{"fig18", "fig19"} {
		var buf bytes.Buffer
		if err := Run(id, Options{}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "cores/node") {
			t.Errorf("%s output malformed", id)
		}
	}
}
