// Package harness regenerates every table and figure of the paper's
// evaluation section and renders them next to the paper's published
// numbers. Each experiment has a named runner dispatched by Run; the
// cmd/experiments binary and the repository's benchmark suite are thin
// wrappers over this package.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
