package harness

import (
	"fmt"
	"io"
	"sort"

	"hcmpi/internal/sim/model"
	"hcmpi/internal/sw"
	"hcmpi/internal/uts"
)

// Options tune experiment scale.
type Options struct {
	// Full selects paper-regime workloads (much slower).
	Full bool
	// TracePath, when non-empty, makes trace-enabled experiments write a
	// Perfetto-loadable timeline there.
	TracePath string
}

// Runner produces one experiment's tables.
type Runner func(o Options) []*Table

// Experiments maps experiment ids (paper table/figure) to runners.
var Experiments = map[string]Runner{
	"fig14":  Fig14,
	"fig15":  Fig15,
	"table2": Table2,
	"fig16":  Fig16,
	"fig17":  Fig17,
	"fig18":  Fig18,
	"fig19":  Fig19,
	"fig20":  Fig20,
	"fig21":  Fig21,
	"table3": Table3,
	"fig22":  Fig22,
	"table4": Table4,
	"fig25":  Fig25,

	"ablation-commworker": AblationCommWorker,
	"ablation-chunking":   AblationChunking,
	"ablation-phasertree": AblationPhaserTree,

	"trace-uts": TraceUTS,

	"summary": Summary,
}

// Names returns the experiment ids in order.
func Names() []string {
	var ns []string
	for n := range Experiments {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Run executes one experiment and renders it to w.
func Run(name string, o Options, w io.Writer) error {
	r, ok := Experiments[name]
	if !ok {
		return fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names())
	}
	for _, t := range r(o) {
		t.Render(w)
	}
	return nil
}

var threadCounts = []int{1, 2, 4, 8}

// threadBench builds the Fig. 14/15 tables for one interconnect.
func threadBench(cm model.CostModel, name string, paperMPIRate, paperHCRate []float64) []*Table {
	bw := &Table{Title: name + ": bandwidth (Gbit/s) — paper Fig a", Header: []string{"threads", "MPI", "HCMPI"}}
	rate := &Table{
		Title:  name + ": message rate (M msgs/s) — paper Fig b",
		Header: []string{"threads", "MPI", "HCMPI", "paper MPI", "paper HCMPI"},
	}
	lat := &Table{Title: name + ": latency (µs, one-way) — paper Fig c", Header: []string{"size"}}
	for _, t := range threadCounts {
		lat.Header = append(lat.Header, fmt.Sprintf("MPI T=%d", t), fmt.Sprintf("HC T=%d", t))
	}
	latRows := map[int][]string{}
	for _, sz := range model.LatencySizes {
		latRows[sz] = []string{fmt.Sprintf("%d", sz)}
	}
	for i, t := range threadCounts {
		m := model.ThreadBenchMPI(t, cm)
		h := model.ThreadBenchHCMPI(t, cm)
		bw.Rows = append(bw.Rows, []string{fmt.Sprintf("%d", t), f1(m.BandwidthGbps), f1(h.BandwidthGbps)})
		rate.Rows = append(rate.Rows, []string{fmt.Sprintf("%d", t), f3(m.MsgRateM), f3(h.MsgRateM), f3(paperMPIRate[i]), f3(paperHCRate[i])})
		for _, sz := range model.LatencySizes {
			latRows[sz] = append(latRows[sz], f1(m.LatencyUS[sz]), f1(h.LatencyUS[sz]))
		}
	}
	for _, sz := range model.LatencySizes {
		lat.Rows = append(lat.Rows, latRows[sz])
	}
	rate.Notes = []string{"shape to check: MPI collapses with threads, HCMPI stays flat; crossover by T=4"}
	return []*Table{bw, rate, lat}
}

// Fig14 regenerates the MVAPICH2/InfiniBand micro-benchmarks.
func Fig14(Options) []*Table {
	return threadBench(model.DefaultCosts(), "Fig 14 (InfiniBand)",
		[]float64{1.765, 1.081, 0.450, 0.200}, []float64{0.345, 0.629, 0.677, 0.445})
}

// Fig15 regenerates the MPICH2/Gemini micro-benchmarks.
func Fig15(Options) []*Table {
	return threadBench(model.GeminiCosts(), "Fig 15 (Gemini)",
		[]float64{0.43, 0.02, 0.22, 0.21}, []float64{0.28, 0.42, 0.42, 0.35})
}

// table2Paper holds the published Table II (µs), indexed
// [row][nodeIdx][coreIdx] with nodes {2,4,8,16,32,64} and cores {2,4,8}.
var table2Rows = []struct {
	name  string
	sys   model.SyncSystem
	kind  model.SyncKind
	paper [6][3]float64
}{
	{"MPI Barrier", model.SyncMPI, model.Barrier,
		[6][3]float64{{3.0, 4.1, 5.1}, {5.8, 6.7, 7.6}, {9.1, 9.8, 11.1}, {12.6, 13.4, 14.7}, {20.0, 19.9, 21.6}, {25.3, 25.7, 26.2}}},
	{"MPI+OMP Barrier (S)", model.SyncHybridStrict, model.Barrier,
		[6][3]float64{{2.5, 2.8, 3.9}, {5.0, 5.8, 6.7}, {8.2, 9.1, 10.0}, {11.6, 12.6, 14.2}, {17.2, 19.0, 20.8}, {21.8, 24.7, 26.2}}},
	{"HCMPI Phaser (S)", model.SyncHCMPIStrict, model.Barrier,
		[6][3]float64{{2.1, 2.2, 2.7}, {4.8, 4.8, 5.4}, {7.7, 7.7, 8.6}, {11.3, 11.2, 12.1}, {17.2, 17.8, 18.0}, {22.0, 21.7, 23.6}}},
	{"MPI+OMP Barrier (F)", model.SyncHybridFuzzy, model.Barrier,
		[6][3]float64{{2.6, 2.9, 3.7}, {4.9, 5.2, 6.1}, {7.3, 8.1, 8.8}, {10.1, 11.1, 12.4}, {13.5, 14.5, 16.6}, {19.4, 20.8, 24.0}}},
	{"HCMPI Phaser (F)", model.SyncHCMPIFuzzy, model.Barrier,
		[6][3]float64{{2.1, 2.2, 2.1}, {5.1, 5.1, 5.0}, {7.5, 7.5, 7.6}, {10.9, 10.7, 10.8}, {14.7, 14.3, 14.8}, {19.3, 18.7, 18.7}}},
	{"MPI Reduction", model.SyncMPI, model.Reduction,
		[6][3]float64{{3.8, 4.6, 5.2}, {6.3, 7.2, 7.9}, {9.5, 10.7, 12.1}, {12.8, 14.3, 15.3}, {17.7, 18.7, 19.8}, {25.0, 25.7, 26.7}}},
	{"MPI+OMP Reduction", model.SyncHybridStrict, model.Reduction,
		[6][3]float64{{3.1, 3.6, 4.9}, {5.4, 5.9, 7.2}, {8.2, 9.1, 10.5}, {11.1, 12.4, 14.1}, {15.1, 16.9, 18.9}, {20.8, 23.4, 25.8}}},
	{"HCMPI Accumulator", model.SyncHCMPIFuzzy, model.Reduction,
		[6][3]float64{{2.6, 2.8, 3.5}, {4.9, 5.0, 5.8}, {7.7, 7.8, 9.4}, {10.7, 10.5, 12.3}, {14.7, 15.4, 16.9}, {20.8, 20.6, 23.5}}},
}

var table2Nodes = []int{2, 4, 8, 16, 32, 64}
var table2Cores = []int{2, 4, 8}

// Table2 regenerates the EPCC syncbench grid.
func Table2(Options) []*Table {
	cm := model.DefaultCosts()
	out := &Table{
		Title:  "Table II: collective synchronization (µs) — measured | paper",
		Header: []string{"system"},
	}
	for _, n := range table2Nodes {
		for _, c := range table2Cores {
			out.Header = append(out.Header, fmt.Sprintf("%dn/%dc", n, c))
		}
	}
	for _, row := range table2Rows {
		cells := []string{row.name}
		for ni, n := range table2Nodes {
			for ci, c := range table2Cores {
				got := model.SyncBench(row.sys, row.kind, n, c, cm)
				cells = append(cells, fmt.Sprintf("%s|%s", f1(got), f1(row.paper[ni][ci])))
			}
		}
		out.Rows = append(out.Rows, cells)
	}
	out.Notes = []string{"shape to check: HCMPI flattest in cores; fuzzy <= strict; MPI steepest"}
	return []*Table{out}
}

// --- UTS ---

func utsTree(o Options, t1 bool) uts.Config {
	if o.Full {
		if t1 {
			return uts.T1Big // ~35M nodes
		}
		return uts.T3Big // ~11M nodes
	}
	if t1 {
		return uts.T1Med // ~540k nodes: starved regime reached quickly
	}
	// T3Med (~50k nodes) is too starved even at 4 nodes; the binomial
	// figures default to the mid tree so the low-core rows are work-rich,
	// as in the paper.
	return uts.T3Mid
}

func utsNodes(o Options) []int {
	if o.Full {
		return []int{4, 8, 16, 32, 64, 128}
	}
	return []int{4, 8, 16, 32}
}

var utsCores = []int{2, 4, 8, 16}

// utsScaling renders a Fig 16-19 style grid: time (s) per (nodes, cores).
func utsScaling(o Options, tree uts.Config, title string,
	run func(n, c int, up model.UTSParams) model.UTSResult) []*Table {
	up := model.DefaultUTSParams(tree)
	t := &Table{Title: title, Header: []string{"nodes"}}
	for _, c := range utsCores {
		t.Header = append(t.Header, fmt.Sprintf("%d cores/node", c))
	}
	for _, n := range utsNodes(o) {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range utsCores {
			r := run(n, c, up)
			row = append(row, fmt.Sprintf("%.3f", r.Makespan.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{fmt.Sprintf("tree %s; shape: scaling until work starves, then flat/degrading (log-scale in the paper)", tree.Name)}
	return []*Table{t}
}

// Fig16 regenerates UTS/MPI scaling on the T1 family.
func Fig16(o Options) []*Table {
	return utsScaling(o, utsTree(o, true), "Fig 16: UTS T1 on MPI — time (s)", model.UTSRunMPI)
}

// Fig17 regenerates UTS/MPI scaling on the T3 family.
func Fig17(o Options) []*Table {
	return utsScaling(o, utsTree(o, false), "Fig 17: UTS T3 on MPI — time (s)", model.UTSRunMPI)
}

// Fig18 regenerates UTS/HCMPI scaling on the T1 family.
func Fig18(o Options) []*Table {
	return utsScaling(o, utsTree(o, true), "Fig 18: UTS T1 on HCMPI — time (s)", model.UTSRunHCMPI)
}

// Fig19 regenerates UTS/HCMPI scaling on the T3 family.
func Fig19(o Options) []*Table {
	return utsScaling(o, utsTree(o, false), "Fig 19: UTS T3 on HCMPI — time (s)", model.UTSRunHCMPI)
}

// speedupGrid renders Fig 20/21/22 style grids.
func speedupGrid(o Options, tree uts.Config, title, note string,
	base func(n, c int, up model.UTSParams) model.UTSResult) []*Table {
	up := model.DefaultUTSParams(tree)
	t := &Table{Title: title, Header: []string{"nodes"}}
	for _, c := range utsCores {
		t.Header = append(t.Header, fmt.Sprintf("%d cores/node", c))
	}
	for _, n := range utsNodes(o) {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range utsCores {
			b := base(n, c, up)
			h := model.UTSRunHCMPI(n, c, up)
			row = append(row, f2(float64(b.Makespan)/float64(h.Makespan)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{note}
	return []*Table{t}
}

// Fig20 regenerates the HCMPI-vs-MPI speedup grid on T1.
func Fig20(o Options) []*Table {
	return speedupGrid(o, utsTree(o, true),
		"Fig 20: HCMPI speedup over MPI, UTS T1",
		"paper: 0.67 at 4n/2c rising to 22.31 at 1024n/16c; <1 at 2 cores/node, crossover by 4",
		model.UTSRunMPI)
}

// Fig21 regenerates the HCMPI-vs-MPI speedup grid on T3.
func Fig21(o Options) []*Table {
	return speedupGrid(o, utsTree(o, false),
		"Fig 21: HCMPI speedup over MPI, UTS T3",
		"paper: 0.67 at 4n/2c rising to 18.47 at 1024n/16c",
		model.UTSRunMPI)
}

// Fig22 regenerates the HCMPI-vs-hybrid speedup grid on T1.
func Fig22(o Options) []*Table {
	return speedupGrid(o, utsTree(o, true),
		"Fig 22: HCMPI speedup over MPI+OpenMP, UTS T1",
		"paper: 0.60-1.0 at low scale rising to 21.15 at 1024n/16c",
		model.UTSRunHybrid)
}

// Table3 regenerates the UTS overhead analysis.
func Table3(o Options) []*Table {
	tree := utsTree(o, true)
	up := model.DefaultUTSParams(tree)
	t := &Table{
		Title:  "Table III: UTS profile (per-resource averages)",
		Header: []string{"nodes", "cores", "system", "time(s)", "work(s)", "ovh(s)", "search(s)", "fails"},
	}
	nodeSet := []int{8, 16, 32}
	if o.Full {
		nodeSet = []int{16, 64, 128}
	}
	for _, n := range nodeSet {
		for _, c := range []int{2, 8, 16} {
			m := model.UTSRunMPI(n, c, up)
			h := model.UTSRunHCMPI(n, c, up)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", c), "MPI",
				f3(m.Makespan.Seconds()), f3(m.AvgWork.Seconds()), f3(m.AvgOverhead.Seconds()), f3(m.AvgSearch.Seconds()),
				fmt.Sprintf("%d", m.Fails)})
			t.Rows = append(t.Rows, []string{
				"", "", "HCMPI",
				f3(h.Makespan.Seconds()), f3(h.AvgWork.Seconds()), f3(h.AvgOverhead.Seconds()), f3(h.AvgSearch.Seconds()),
				fmt.Sprintf("%d", h.Fails)})
		}
	}
	t.Notes = []string{
		"shape to check: HCMPI overhead ~5x smaller; MPI search explodes at high cores;",
		"MPI failed steals orders of magnitude higher in the starved regime",
	}
	return []*Table{t}
}

// Table4 regenerates the Smith-Waterman DDDF scaling study (Fig 24 is the
// same data as a curve).
func Table4(Options) []*Table {
	sp := model.DefaultSWParams()
	paper := map[[2]int]float64{
		{8, 2}: 1955.1, {16, 2}: 942.7, {32, 2}: 479.4, {64, 2}: 258.1, {96, 2}: 192.8,
		{8, 4}: 668.9, {16, 4}: 336.3, {32, 4}: 184.1, {64, 4}: 109.5, {96, 4}: 86.6,
		{8, 8}: 294.9, {16, 8}: 155.2, {32, 8}: 87.6, {64, 8}: 50.0, {96, 8}: 37.0,
		{8, 12}: 192.3, {16, 12}: 102.2, {32, 12}: 57.2, {64, 12}: 32.8, {96, 12}: 24.4,
	}
	t := &Table{
		Title:  "Table IV / Fig 24: Smith-Waterman DDDF scaling — seconds, measured | paper",
		Header: []string{"cores\\nodes", "8", "16", "32", "64", "96"},
	}
	for _, c := range []int{2, 4, 8, 12} {
		row := []string{fmt.Sprintf("%d", c)}
		for _, n := range []int{8, 16, 32, 64, 96} {
			got := model.SWRunDDDF(n, c, sp).Seconds()
			row = append(row, fmt.Sprintf("%.1f|%.1f", got, paper[[2]int{n, c}]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{"1.856M x 1.92M sequences, 9280x9600 outer tiles (200x200 grid)"}
	return []*Table{t}
}

// Fig25 regenerates the Smith-Waterman HCMPI-vs-hybrid comparison.
func Fig25(Options) []*Table {
	sp := model.Fig25SWParams()
	spH := sp
	spH.Cfg.OuterH, spH.Cfg.OuterW = 5800, 6000 // the hybrid's preferred tiling
	spH.Dist = sw.ColumnCyclic                  // and its preferred distribution
	paper := map[[2]int]float64{
		{1, 2}: 0.51, {4, 2}: 0.51, {16, 2}: 0.58,
		{1, 4}: 0.83, {4, 4}: 0.84, {16, 4}: 0.69,
		{1, 8}: 1.24, {4, 8}: 1.33, {16, 8}: 1.16,
		{1, 12}: 1.62, {4, 12}: 1.60, {16, 12}: 1.45,
	}
	t := &Table{
		Title:  "Fig 25: Smith-Waterman speedup MPI+OMP time / HCMPI-DDDF time — measured | paper",
		Header: []string{"cores\\nodes", "1", "4", "16"},
	}
	for _, c := range []int{2, 4, 8, 12} {
		row := []string{fmt.Sprintf("%d", c)}
		for _, n := range []int{1, 4, 16} {
			d := model.SWRunDDDF(n, c, sp)
			h := model.SWRunHybrid(n, c, spH)
			row = append(row, fmt.Sprintf("%.2f|%.2f", float64(h)/float64(d), paper[[2]int{n, c}]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{"shape to check: hybrid wins at 2-4 cores/node (HCMPI loses a core to the comm worker); DDDF wins beyond ~6"}
	return []*Table{t}
}

// --- ablations (DESIGN.md §5) ---

// AblationCommWorker quantifies the dedicated-communication-worker trade:
// HCMPI with cores vs cores+1 workers against MPI on the same resources.
func AblationCommWorker(o Options) []*Table {
	tree := utsTree(o, true)
	up := model.DefaultUTSParams(tree)
	t := &Table{
		Title:  "Ablation: dedicated communication worker (UTS T1 time, s)",
		Header: []string{"nodes", "cores", "MPI (all cores compute)", "HCMPI (1 core = comm)"},
	}
	for _, cfg := range []struct{ n, c int }{{4, 2}, {4, 16}, {16, 2}, {16, 16}, {32, 8}} {
		m := model.UTSRunMPI(cfg.n, cfg.c, up)
		h := model.UTSRunHCMPI(cfg.n, cfg.c, up)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cfg.n), fmt.Sprintf("%d", cfg.c),
			f3(m.Makespan.Seconds()), f3(h.Makespan.Seconds())})
	}
	t.Notes = []string{"the lost compute core hurts at 2 cores/node and pays for itself beyond 4 (paper §I, §IV-B)"}
	return []*Table{t}
}

// AblationPhaserTree isolates the paper's §III-A claim that tree-based
// phasers scale much better than flat phasers: barrier cost at 8 nodes
// with growing task counts per node, flat vs degree-2 tree aggregation.
func AblationPhaserTree(Options) []*Table {
	cm := model.DefaultCosts()
	t := &Table{
		Title:  "Ablation: flat vs tree phaser (hcmpi-phaser barrier at 8 nodes, µs)",
		Header: []string{"tasks/node", "flat", "tree"},
	}
	for _, cores := range []int{2, 4, 8, 16, 32, 64, 128} {
		flat := model.SyncBenchPhaser(8, cores, cm, true)
		tree := model.SyncBenchPhaser(8, cores, cm, false)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", cores), f1(flat), f1(tree)})
	}
	t.Notes = []string{"flat aggregation is linear in tasks, the tree logarithmic (paper §III-A, citing Euro-Par'11/IPDPS'10)"}
	return []*Table{t}
}

// AblationChunking sweeps the -c/-i knobs the paper tuned per system.
func AblationChunking(o Options) []*Table {
	tree := utsTree(o, true)
	t := &Table{
		Title:  "Ablation: UTS chunk size / polling interval (HCMPI 16n/8c, time s)",
		Header: []string{"chunk", "i=2", "i=4", "i=8", "i=16"},
	}
	for _, c := range []int{2, 4, 8, 15, 32} {
		row := []string{fmt.Sprintf("%d", c)}
		for _, i := range []int{2, 4, 8, 16} {
			up := model.DefaultUTSParams(tree)
			up.Chunk, up.Poll = c, i
			r := model.UTSRunHCMPI(16, 8, up)
			row = append(row, f3(r.Makespan.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{"paper's best: MPI T1 -c4 -i16, T3 -c15 -i8; HCMPI -c8 -i4"}
	return []*Table{t}
}
