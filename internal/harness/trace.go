package harness

import (
	"fmt"
	"time"

	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/trace"
	"hcmpi/internal/uts"
)

// TraceUTS runs a small UTS job on the real (non-simulated) runtime with
// tracing enabled and renders the post-run analysis: per-worker
// utilization, steal rates, and comm/compute overlap — the measured
// counterpart of the paper's §IV timeline discussion. With
// Options.TracePath set, the Perfetto-loadable timeline is written
// there as well.
func TraceUTS(o Options) []*Table {
	tree := uts.T1Small
	ranks, workers := 2, 2
	if o.Full {
		tree, ranks, workers = uts.T1Med, 4, 4
	}

	tr := trace.New(trace.Config{})
	start := time.Now()
	w := mpi.NewWorld(ranks, mpi.WithTracer(tr))
	w.Run(func(c *mpi.Comm) {
		n := hcmpi.NewNode(c, hcmpi.Config{Workers: workers, Tracer: tr})
		uts.RunHCMPI(n, tree, uts.Params{Chunk: 8, PollInterval: 4})
		n.Close()
	})
	elapsed := time.Since(start)

	rep := tr.BuildReport()
	t := &Table{
		Title:  fmt.Sprintf("Trace: UTS %s on the real runtime (%d ranks x %d workers, wall %v)", tree.Name, ranks, workers, elapsed.Round(time.Millisecond)),
		Header: []string{"rank", "mean util", "steal rate", "comm ops", "overlap"},
	}
	for i := range rep.Ranks {
		rr := &rep.Ranks[i]
		overlap := "-"
		if rr.Overlap >= 0 {
			overlap = fmt.Sprintf("%.1f%%", 100*rr.Overlap)
		}
		stealRate := "-"
		if r := rr.StealRate(); r >= 0 {
			stealRate = fmt.Sprintf("%.1f%%", 100*r)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rr.Pid),
			fmt.Sprintf("%.1f%%", 100*rr.MeanUtil()),
			stealRate,
			fmt.Sprintf("%d", rr.CommOps),
			overlap,
		})
	}
	t.Notes = []string{fmt.Sprintf("%d events recorded (%d dropped by ring overflow)", rep.Events, rep.Dropped)}

	if o.TracePath != "" {
		if err := tr.WriteChromeFile(o.TracePath); err != nil {
			t.Notes = append(t.Notes, "trace write failed: "+err.Error())
		} else {
			t.Notes = append(t.Notes, "timeline written to "+o.TracePath+" (load at https://ui.perfetto.dev)")
		}
	}
	return []*Table{t}
}
