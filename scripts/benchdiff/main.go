// benchdiff snapshots `go test -bench` output as JSON and compares two
// snapshots, flagging time and allocation regressions. Stdlib only.
//
// Usage:
//
//	benchdiff save out.json [bench.txt]   parse bench output (stdin if no file)
//	benchdiff diff old.json new.json      print per-benchmark deltas
//
// Flags for diff:
//
//	-time-threshold pct   fail if ns/op regresses more than pct (default 20)
//	-check                exit 1 on any flagged regression (allocs/op may
//	                      never increase; ns/op within threshold)
//
// The GOMAXPROCS suffix (-8 etc.) is stripped from benchmark names so
// snapshots taken on machines with different core counts still line up.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Results []result `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(\S+) ns/op(.*)$`)
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (snapshot, error) {
	var snap snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := result{
			Name:       procSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
			NsPerOp:    ns,
		}
		// Trailing metrics: "104 B/op  3 allocs/op" plus any custom ones.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		snap.Results = append(snap.Results, res)
	}
	sort.Slice(snap.Results, func(i, j int) bool { return snap.Results[i].Name < snap.Results[j].Name })
	return snap, sc.Err()
}

func load(path string) (snapshot, error) {
	var snap snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	return snap, json.Unmarshal(b, &snap)
}

func save(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: benchdiff save out.json [bench.txt]")
	}
	in := io.Reader(os.Stdin)
	if len(args) > 1 {
		f, err := os.Open(args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	snap, err := parse(in)
	if err != nil {
		return err
	}
	if len(snap.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(args[0], b, 0o644); err != nil {
		return err
	}
	fmt.Printf("saved %d benchmarks to %s\n", len(snap.Results), args[0])
	return nil
}

func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "  ±0.0%"
		}
		return "   new"
	}
	d := (new - old) / old * 100
	return fmt.Sprintf("%+6.1f%%", d)
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	timeThreshold := fs.Float64("time-threshold", 20, "max allowed ns/op regression, percent")
	check := fs.Bool("check", false, "exit 1 on flagged regressions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff diff [flags] old.json new.json")
	}
	oldSnap, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newSnap, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	oldBy := map[string]result{}
	for _, r := range oldSnap.Results {
		oldBy[r.Name] = r
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-40s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δtime", "old allocs", "new allocs", "Δallocs")
	regressions := 0
	for _, nr := range newSnap.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14s %14.1f %8s %10s %10.0f %8s\n",
				nr.Name, "-", nr.NsPerOp, "new", "-", nr.AllocsPerOp, "new")
			continue
		}
		mark := ""
		if or.NsPerOp > 0 && (nr.NsPerOp-or.NsPerOp)/or.NsPerOp*100 > *timeThreshold {
			mark = "  << TIME REGRESSION"
			regressions++
		}
		if nr.AllocsPerOp > or.AllocsPerOp {
			mark += "  << ALLOC REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.1f %8s %10.0f %10.0f %8s%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, pct(or.NsPerOp, nr.NsPerOp),
			or.AllocsPerOp, nr.AllocsPerOp, pct(or.AllocsPerOp, nr.AllocsPerOp), mark)
	}
	if *check && regressions > 0 {
		w.Flush()
		return fmt.Errorf("%d regression(s) flagged", regressions)
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff {save|diff} ...")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = save(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
