// Command threadbench runs the ANL-style thread micro-benchmarks (paper
// Fig 14/15) against the real runtime: message rate and round-trip
// latency between two in-process ranks, comparing direct multithreaded
// MPI calls (MPI_THREAD_MULTIPLE) with HCMPI's funneling through the
// dedicated communication worker.
//
//	threadbench -threads 4 -msgs 20000
//
// (The calibrated paper-shape regeneration lives in the simulator:
// `experiments -run fig14`.)
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/netsim"
)

func main() {
	threads := flag.Int("threads", 4, "sender threads / computation workers")
	msgs := flag.Int("msgs", 10000, "messages per thread (rate test)")
	latency := flag.Duration("latency", 2*time.Microsecond, "modelled inter-node latency")
	flag.Parse()

	net := netsim.Params{InterLatency: *latency}

	// --- multithreaded MPI message rate ---
	mpiRate := func() float64 {
		w := mpi.NewWorld(2, mpi.WithNetwork(net),
			mpi.WithThreadMode(mpi.ThreadMultiple), mpi.WithThreadOverhead(300*time.Nanosecond))
		var elapsed time.Duration
		w.Run(func(c *mpi.Comm) {
			var wg sync.WaitGroup
			t0 := time.Now()
			for t := 0; t < *threads; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					if c.Rank() == 0 {
						for i := 0; i < *msgs; i++ {
							c.Isend([]byte{1}, 1, t) //hclint:allow fire-and-forget control message: the eager transport copies at post and completes autonomously
						}
					} else {
						buf := make([]byte, 1)
						for i := 0; i < *msgs; i++ {
							c.Recv(buf, 0, t)
						}
					}
				}(t)
			}
			wg.Wait()
			if c.Rank() == 1 {
				elapsed = time.Since(t0)
			}
		})
		return float64(*threads**msgs) / elapsed.Seconds() / 1e6
	}()

	// --- HCMPI message rate (funneled through the comm worker) ---
	hcmpiRate := func() float64 {
		w := mpi.NewWorld(2, mpi.WithNetwork(net))
		var elapsed time.Duration
		w.Run(func(c *mpi.Comm) {
			n := hcmpi.NewNode(c, hcmpi.Config{Workers: *threads})
			n.Main(func(ctx *hc.Ctx) {
				t0 := time.Now()
				ctx.Finish(func(ctx *hc.Ctx) {
					for t := 0; t < *threads; t++ {
						t := t
						ctx.Async(func(ctx *hc.Ctx) {
							if n.Rank() == 0 {
								for i := 0; i < *msgs; i++ {
									n.Isend([]byte{1}, 1, t) //hclint:allow fire-and-forget control message: the eager transport copies at post and completes autonomously
								}
							} else {
								buf := make([]byte, 1)
								for i := 0; i < *msgs; i++ {
									n.Recv(ctx, buf, 0, t)
								}
							}
						})
					}
				})
				if n.Rank() == 1 {
					elapsed = time.Since(t0)
				}
			})
			n.Close()
		})
		return float64(*threads**msgs) / elapsed.Seconds() / 1e6
	}()

	// --- ping-pong latency ---
	pingpong := func(useHCMPI bool) time.Duration {
		const iters = 2000
		var rtt time.Duration
		if useHCMPI {
			w := mpi.NewWorld(2, mpi.WithNetwork(net))
			w.Run(func(c *mpi.Comm) {
				n := hcmpi.NewNode(c, hcmpi.Config{Workers: 1})
				n.Main(func(ctx *hc.Ctx) {
					buf := make([]byte, 8)
					t0 := time.Now()
					for i := 0; i < iters; i++ {
						if n.Rank() == 0 {
							n.Send(ctx, buf, 1, 0)
							n.Recv(ctx, buf, 1, 1)
						} else {
							n.Recv(ctx, buf, 0, 0)
							n.Send(ctx, buf, 0, 1)
						}
					}
					if n.Rank() == 0 {
						rtt = time.Since(t0) / iters
					}
				})
				n.Close()
			})
			return rtt
		}
		w := mpi.NewWorld(2, mpi.WithNetwork(net))
		w.Run(func(c *mpi.Comm) {
			buf := make([]byte, 8)
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(buf, 1, 0)
					c.Recv(buf, 1, 1)
				} else {
					c.Recv(buf, 0, 0)
					c.Send(buf, 0, 1)
				}
			}
			if c.Rank() == 0 {
				rtt = time.Since(t0) / iters
			}
		})
		return rtt
	}

	fmt.Printf("threads=%d msgs/thread=%d latency=%v\n", *threads, *msgs, *latency)
	fmt.Printf("  message rate:  MPI(thread-multiple) %.3f M/s   HCMPI %.3f M/s\n", mpiRate, hcmpiRate)
	fmt.Printf("  ping-pong RTT: MPI %v   HCMPI %v\n",
		pingpong(false).Round(100*time.Nanosecond), pingpong(true).Round(100*time.Nanosecond))
}
