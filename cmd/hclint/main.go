// Command hclint is the HCMPI static analyzer driver: it loads every
// package of the module (including test files) with the standard
// library's go/* packages only, runs the internal/lint analyzer suite,
// prints findings as "file:line: [check] message", and exits non-zero if
// anything was found.
//
// Usage:
//
//	hclint [-tags tag1,tag2] [-checks name1,name2] [dir]
//
// dir (default ".") may be the module root, any directory inside the
// module, or a "./..." pattern — the whole module is always linted.
// Exit codes: 0 clean, 1 findings, 2 load or usage error.
//
// The analyzers and the invariants they defend are catalogued in
// DESIGN.md §10. Run the debug-assertion complement with
// `make tier1-debug`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hcmpi/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags (e.g. hcmpi_debug)")
	checks := flag.String("checks", "", "comma-separated analyzer names (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hclint [-tags t1,t2] [-checks c1,c2] [dir]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fatal(err)
	}

	suite := lint.All()
	if *checks != "" {
		suite, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fatal(err)
		}
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	loader, err := lint.NewLoader(root, tagList...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fatal(fmt.Errorf("type error in %s: %v", p.Path, e))
		}
	}

	findings := lint.RunAll(pkgs, suite)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Check, f.Msg)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "hclint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("hclint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hclint:", err)
	os.Exit(2)
}
