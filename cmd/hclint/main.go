// Command hclint is the HCMPI static analyzer driver: it loads every
// package of the module (including test files) with the standard
// library's go/* packages only, runs the internal/lint analyzer suite,
// prints findings as "file:line: [check] message", and exits non-zero if
// anything was found.
//
// Usage:
//
//	hclint [-tags tag1,tag2] [-checks name1,name2] [-stats] [-sarif out.sarif] [-audit-allow] [dir]
//	hclint -want [-checks name1,name2] fixture-dir
//	hclint -validate-sarif file.sarif
//
// dir (default ".") may be the module root, any directory inside the
// module, or a "./..." pattern — the whole module is always linted.
// -stats prints per-analyzer finding counts and wall time to stderr.
// -sarif additionally writes the run as a SARIF 2.1.0 log (findings
// plus every //hclint:allow suppression with its justification) for
// CI upload; the emitted file is self-validated before the driver
// exits. -audit-allow fails the run when an //hclint:allow comment
// suppressed nothing — stale waivers are deleted, not accumulated.
// -validate-sarif structurally checks an existing SARIF file against
// the 2.1.0 schema subset hclint emits and exits.
// -want flips the driver into fixture mode: the directory is loaded as
// a single package and the findings are cross-checked against its
// `// want:` line markers, in both directions — CI runs the analyzer
// fixtures through this mode so the suite is exercised by the installed
// binary, not only by `go test`.
// Exit codes: 0 clean, 1 findings (or marker mismatches, or stale
// allows), 2 load or usage error.
//
// The analyzers and the invariants they defend are catalogued in
// DESIGN.md §10 (intra-procedural), §14 (the call-graph-based suite),
// and §15 (the CFG/dataflow-based protocol analyzers). Run the
// debug-assertion complement with `make tier1-debug`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hcmpi/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags (e.g. hcmpi_debug)")
	checks := flag.String("checks", "", "comma-separated analyzer names (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and timings to stderr")
	want := flag.Bool("want", false, "fixture mode: verify findings against the directory's // want: markers")
	sarifOut := flag.String("sarif", "", "write the run as a SARIF 2.1.0 log to this path")
	auditAllow := flag.Bool("audit-allow", false, "fail when an //hclint:allow comment suppresses nothing")
	validateSarif := flag.String("validate-sarif", "", "validate an existing SARIF file and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hclint [-tags t1,t2] [-checks c1,c2] [-stats] [-sarif out.sarif] [-audit-allow] [dir]\n"+
			"       hclint -want [-checks c1,c2] fixture-dir\n"+
			"       hclint -validate-sarif file.sarif\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *validateSarif != "" {
		data, err := os.ReadFile(*validateSarif)
		if err != nil {
			fatal(err)
		}
		if err := lint.ValidateSARIF(data); err != nil {
			fmt.Fprintln(os.Stderr, "hclint:", err)
			os.Exit(1)
		}
		fmt.Printf("hclint: %s is valid SARIF %s\n", *validateSarif, "2.1.0")
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	var err error
	suite := lint.All()
	if *checks != "" {
		suite, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fatal(err)
		}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}

	if *want {
		runWantMode(dir, suite, tagList)
		return
	}

	root, err := findModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root, tagList...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fatal(fmt.Errorf("type error in %s: %v", p.Path, e))
		}
	}

	res := lint.RunAllResult(pkgs, suite)
	cwd, _ := os.Getwd()
	for _, f := range res.Findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Check, f.Msg)
	}
	if *stats {
		printStats(res.Stats)
	}

	var stale []lint.Finding
	if *auditAllow {
		stale = lint.AuditAllows(pkgs)
		for _, f := range stale {
			name := f.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
			}
			fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Check, f.Msg)
		}
	}

	if *sarifOut != "" {
		if err := writeSARIFFile(*sarifOut, root, suite, res); err != nil {
			fatal(err)
		}
	}

	if n := len(res.Findings) + len(stale); n > 0 {
		fmt.Fprintf(os.Stderr, "hclint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// writeSARIFFile renders the run as SARIF and re-validates the emitted
// bytes, so a writer regression can never ship a broken artifact.
func writeSARIFFile(path, root string, suite []*lint.Analyzer, res lint.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.WriteSARIF(f, root, suite, res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := lint.ValidateSARIF(data); err != nil {
		return fmt.Errorf("emitted %s failed self-validation: %w", path, err)
	}
	return nil
}

// runWantMode loads dir as one fixture package and verifies the suite's
// findings match its // want: markers exactly.
func runWantMode(dir string, suite []*lint.Analyzer, tags []string) {
	pkg, err := lint.LoadPackageDir(dir, tags...)
	if err != nil {
		fatal(err)
	}
	for _, e := range pkg.Errors {
		fatal(fmt.Errorf("type error in %s: %v", dir, e))
	}
	mismatches, err := lint.WantMismatches(dir, lint.RunAll([]*lint.Package{pkg}, suite))
	if err != nil {
		fatal(err)
	}
	for _, m := range mismatches {
		fmt.Printf("%s%c%s\n", dir, filepath.Separator, m)
	}
	if len(mismatches) > 0 {
		fmt.Fprintf(os.Stderr, "hclint: %d want-marker mismatch(es) in %s\n", len(mismatches), dir)
		os.Exit(1)
	}
	fmt.Printf("hclint: %s ok (markers match)\n", dir)
}

// printStats renders the per-analyzer accounting table. The first
// module-wide analyzer's time includes building the shared call graph
// and blocking facts; the rest hit the cache.
func printStats(stats []lint.Stat) {
	for _, s := range stats {
		fmt.Fprintf(os.Stderr, "%-15s %3d finding(s) %12s\n",
			s.Name, s.Findings, s.Elapsed.Round(time.Microsecond))
	}
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("hclint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hclint:", err)
	os.Exit(2)
}
