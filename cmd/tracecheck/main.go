// Command tracecheck validates a Chrome trace JSON file produced by the
// runtime's -trace flag: it parses the file and asserts the exporter's
// structural invariants (timestamps monotonic per track, begin/end
// slices balanced), then prints a one-line summary. CI's trace-demo
// target runs it over a fresh UTS timeline.
//
// Usage:
//
//	tracecheck uts.json
package main

import (
	"fmt"
	"os"

	"hcmpi/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum, err := trace.ValidateChrome(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("%s: OK — %d events on %d tracks (%d slices, %d instants)\n",
		os.Args[1], sum.Events, sum.Tracks, sum.Slices, sum.Instants)
}
