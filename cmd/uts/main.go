// Command uts runs the Unbalanced Tree Search benchmark on the real
// (non-simulated) runtime, in any of the paper's three flavours:
//
//	uts -impl hcmpi  -ranks 4 -workers 3 -tree t1med -c 8 -i 4
//	uts -impl mpi    -ranks 8            -tree t3small -c 4 -i 16
//	uts -impl hybrid -ranks 2 -workers 4 -tree t1small
//
// All ranks run in-process over the modelled interconnect; counters per
// the paper's Table III are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/netsim"
	"hcmpi/internal/trace"
	"hcmpi/internal/uts"
)

var trees = map[string]uts.Config{
	"t1small": uts.T1Small,
	"t1med":   uts.T1Med,
	"t1big":   uts.T1Big,
	"t3small": uts.T3Small,
	"t3med":   uts.T3Med,
	"t3big":   uts.T3Big,
}

func main() {
	impl := flag.String("impl", "hcmpi", "mpi | hcmpi | hybrid")
	ranks := flag.Int("ranks", 2, "MPI ranks (nodes for hcmpi/hybrid)")
	workers := flag.Int("workers", 2, "computation workers (hcmpi) or threads (hybrid) per rank")
	treeName := flag.String("tree", "t1med", "t1small|t1med|t1big|t3small|t3med|t3big")
	chunk := flag.Int("c", 8, "steal chunk size")
	poll := flag.Int("i", 4, "polling interval")
	latency := flag.Duration("latency", 0, "modelled inter-node latency (e.g. 2us)")
	tracePath := flag.String("trace", "", "write a Perfetto-loadable timeline (Chrome trace JSON) here")
	report := flag.Bool("report", false, "print the post-run trace analysis (utilization, steals, overlap)")
	flag.Parse()

	tree, ok := trees[*treeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *treeName)
		os.Exit(2)
	}
	params := uts.Params{Chunk: *chunk, PollInterval: *poll}
	net := netsim.Params{InterLatency: *latency}

	seqNodes, _ := tree.SeqCount()
	var mu sync.Mutex
	var total uts.Counters

	var tr *trace.Tracer
	if *tracePath != "" || *report {
		tr = trace.New(trace.Config{})
	}
	metrics := trace.NewMetrics() // job-wide counters, merged from every rank

	start := time.Now()
	w := mpi.NewWorld(*ranks, mpi.WithNetwork(net), mpi.WithTracer(tr))
	w.Run(func(c *mpi.Comm) {
		var ctr uts.Counters
		switch *impl {
		case "mpi":
			ctr = uts.RunMPI(c, tree, params)
		case "hcmpi":
			n := hcmpi.NewNode(c, hcmpi.Config{Workers: *workers, Tracer: tr})
			ctr = uts.RunHCMPI(n, tree, params)
			n.Close()
			metrics.Merge(n.Metrics())
		case "hybrid":
			ctr = uts.RunHybrid(c, tree, params, *workers, uts.HybridImproved)
		default:
			fmt.Fprintf(os.Stderr, "unknown impl %q\n", *impl)
			os.Exit(2)
		}
		mu.Lock()
		total.Add(ctr)
		mu.Unlock()
	})
	elapsed := time.Since(start)

	fmt.Printf("impl=%s tree=%s ranks=%d workers=%d c=%d i=%d\n",
		*impl, tree.Name, *ranks, *workers, params.Chunk, params.PollInterval)
	fmt.Printf("nodes=%d (sequential: %d) depth=%d\n", total.Nodes, seqNodes, total.MaxDepth)
	fmt.Printf("work=%v overhead=%v search=%v\n",
		total.Work.Round(time.Microsecond), total.Overhead.Round(time.Microsecond), total.Search.Round(time.Microsecond))
	fmt.Printf("steals: local=%d global=%d failed=%d released=%d\n",
		total.LocalSteals, total.Steals, total.FailedSteals, total.Released)
	fmt.Printf("wall=%v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("metrics: %s\n", metrics.Summary())
	if *report {
		tr.WriteReport(os.Stdout)
	}
	if *tracePath != "" {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (load it at https://ui.perfetto.dev)\n", *tracePath)
	}
	if total.Nodes != seqNodes {
		fmt.Fprintln(os.Stderr, "ERROR: node count mismatch")
		os.Exit(1)
	}
}
