package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hcmpi"
	"hcmpi/internal/uts"
)

// progOpts carries the per-run flag values a program body may need.
type progOpts struct {
	np       int
	killRank int
	deadline time.Duration
}

// program is one entry of the -prog registry.
type program struct {
	desc string
	// killsRank: the launcher SIGKILLs -kill-rank after -kill-after and
	// expects every survivor to exit cleanly anyway.
	killsRank bool
	// body builds the rank main task from the launch options.
	body func(o progOpts) func(n *hcmpi.Node, ctx *hcmpi.Ctx)
}

// programs is the registry behind -prog. Adding a program is one entry
// here; the launcher, flag validation, and usage text all key off it.
var programs = map[string]program{
	"demo": {
		desc: "ring p2p, a collective, one-sided puts",
		body: func(progOpts) func(*hcmpi.Node, *hcmpi.Ctx) { return demo },
	},
	"chaos": {
		desc:      "SIGKILL a rank mid-collective; survivors must observe ErrRankFailed",
		killsRank: true,
		body: func(o progOpts) func(*hcmpi.Node, *hcmpi.Ctx) {
			return chaosProg(o.killRank, o.deadline)
		},
	},
	"uts-dist": {
		desc: "imbalanced UTS rebalanced by the distributed scheduler",
		body: utsDistProg,
	},
	"dist-chaos": {
		desc:      "SIGKILL a rank mid-steal; the distributed scheduler must fail stop",
		killsRank: true,
		body:      distChaosProg,
	},
}

// progNames returns the registry's keys, sorted for usage text.
func progNames() string {
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// demo: ring p2p, a collective, and one-sided puts — across processes.
func demo(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	me, p := n.Rank(), n.Size()

	// Ring exchange.
	next, prev := (me+1)%p, (me+p-1)%p
	req := n.IrecvBytes(prev, 1)
	n.Isend([]byte(fmt.Sprintf("hello from pid %d rank %d", os.Getpid(), me)), next, 1) //hclint:allow fire-and-forget control message: the eager transport copies at post and completes autonomously
	st := n.Wait(ctx, req)
	fmt.Printf("rank %d (pid %d) received: %q\n", me, os.Getpid(), st.Payload)

	// Allreduce across processes.
	sum := n.Allreduce(ctx, encode(int64(me+1)), hcmpi.Int64, hcmpi.OpSum)
	if me == 0 {
		fmt.Printf("allreduce over %d processes: %d\n", p, decode(sum))
	}

	// One-sided puts into every peer's window.
	buf := make([]byte, p)
	win := n.WinCreate(ctx, buf)
	for t := 0; t < p; t++ {
		win.Put([]byte{byte(me + 1)}, t, me) //hclint:allow RMA requests are epoch-completed by Win.Fence, not per-request Wait
	}
	win.Fence(ctx)
	for r := 0; r < p; r++ {
		if buf[r] != byte(r+1) {
			fmt.Fprintf(os.Stderr, "rank %d: RMA slot %d = %d\n", me, r, buf[r])
			os.Exit(1)
		}
	}
	if me == 0 {
		fmt.Println("one-sided puts verified on every process")
	}
}

// chaosProg builds the fail-stop exercise: after a warm-up collective
// the victim leaves the collective schedule and waits for the
// launcher's SIGKILL, while the survivors enter a barrier that still
// includes it. That barrier can only complete through the failure
// path, after which each survivor asserts that operations against the
// dead rank fail fast with ErrRankFailed.
func chaosProg(victim int, deadline time.Duration) func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	return func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		me := n.Rank()
		n.Barrier(ctx) // everyone up, mesh fully connected
		if me == victim {
			fmt.Printf("chaos: victim rank %d (pid %d) awaiting kill\n", me, os.Getpid())
			select {} // hold the rank open until SIGKILL
		}
		watchdog := time.AfterFunc(deadline, func() {
			fmt.Fprintf(os.Stderr, "chaos: rank %d: deadline %v expired without observing the failure\n", me, deadline)
			os.Exit(3)
		})
		defer watchdog.Stop()

		// Mid-collective when the kill lands: the victim never joins, so
		// this unblocks only once the transport declares it failed.
		n.Barrier(ctx)

		st := n.Wait(ctx, n.Isend([]byte{1}, victim, 9))
		if st.Err != hcmpi.ErrRankFailed {
			fmt.Fprintf(os.Stderr, "chaos: rank %d: send to dead rank returned %v, want ErrRankFailed\n", me, st.Err)
			os.Exit(4)
		}
		fmt.Printf("chaos: rank %d observed ErrRankFailed for rank %d\n", me, victim)
	}
}

// utsDistProg runs a maximally imbalanced UTS — the whole tree seeded
// on rank 0 — and lets the distributed scheduler spread it: each rank
// reports how many tasks migrated in, and rank 0 checks the allreduced
// node count against the sequential ground truth. This is the
// end-to-end steal smoke across real OS processes.
func utsDistProg(progOpts) func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	return func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		// T1Big carries seconds of work: the root rank stays loaded long
		// enough for every peer's steal requests to land over TCP even
		// with all processes sharing one core.
		tree := uts.T1Big
		n.Barrier(ctx) // start line: all ranks up before the root starts
		ctr, err := uts.RunHCMPIIn(n, ctx, tree, uts.DefaultParams)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uts-dist: rank %d: %v\n", n.Rank(), err)
			os.Exit(1)
		}
		migrated := n.Metrics().Counter("dist_steal_tasks_migrated").Load()
		fmt.Printf("uts-dist: rank %d nodes=%d migrated_in=%d local_steals=%d\n",
			n.Rank(), ctr.Nodes, migrated, ctr.LocalSteals)
		total := decode(n.Allreduce(ctx, encode(ctr.Nodes), hcmpi.Int64, hcmpi.OpSum))
		if n.Rank() == 0 {
			want, _ := tree.SeqCount()
			if total != want {
				fmt.Fprintf(os.Stderr, "uts-dist: counted %d nodes, want %d\n", total, want)
				os.Exit(1)
			}
			fmt.Printf("uts-dist: %s complete: %d nodes across %d processes\n",
				tree.Name, total, n.Size())
		}
	}
}

// distChaosProg is the chaos program for the distributed scheduler: the
// victim seeds a long queue of slow tasks that the other ranks steal
// from, the launcher SIGKILLs it mid-steal, and every survivor's
// Scheduler.Run must abort with ErrRankFailed instead of hanging in the
// termination ring.
func distChaosProg(o progOpts) func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	victim, deadline := o.killRank, o.deadline
	return func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		me := n.Rank()
		s := hcmpi.NewDistScheduler(n, hcmpi.DistConfig{})
		s.Register("slow", func(tc *hcmpi.DistTaskCtx, payload []byte) {
			time.Sleep(2 * time.Millisecond)
		})
		if me == victim {
			// Enough queued work to keep the victim alive and granting
			// steals until the launcher's kill lands.
			for i := 0; i < 2000; i++ {
				s.Submit("slow", nil)
			}
		}
		n.Barrier(ctx) // everyone up before the stealing starts
		if me == victim {
			fmt.Printf("dist-chaos: victim rank %d (pid %d) seeded and serving steals\n", me, os.Getpid())
		}
		watchdog := time.AfterFunc(deadline, func() {
			fmt.Fprintf(os.Stderr, "dist-chaos: rank %d: deadline %v expired without observing the failure\n", me, deadline)
			os.Exit(3)
		})
		defer watchdog.Stop()

		err := s.Run(ctx)
		if me == victim {
			// Only reachable if the kill never landed; the launcher
			// reports that as its own failure.
			return
		}
		if !errors.Is(err, hcmpi.ErrRankFailed) {
			fmt.Fprintf(os.Stderr, "dist-chaos: rank %d: Run returned %v, want ErrRankFailed\n", me, err)
			os.Exit(4)
		}
		fmt.Printf("dist-chaos: rank %d observed ErrRankFailed\n", me)
	}
}

func encode(x int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func decode(b []byte) int64 {
	var x int64
	for i := 0; i < 8; i++ {
		x |= int64(b[i]) << (8 * i)
	}
	return x
}
