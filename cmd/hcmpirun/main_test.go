package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildHcmpirun compiles the launcher once per test binary.
func buildHcmpirun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hcmpirun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeDistributed runs the demo program across 4 real OS
// processes: mesh bring-up, ring p2p, a collective, RMA, teardown.
func TestSmokeDistributed(t *testing.T) {
	bin := buildHcmpirun(t)
	out, err := exec.Command(bin, "-np", "4", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("demo run: %v\n%s", err, out)
	}
	for _, want := range []string{"allreduce over 4 processes: 10",
		"one-sided puts verified on every process", "job complete"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestChaosRankKill SIGKILLs one rank of a live job mid-collective and
// asserts every survivor observes ErrRankFailed within the deadline —
// the transport's fail-stop contract across real processes.
func TestChaosRankKill(t *testing.T) {
	bin := buildHcmpirun(t)
	out, err := exec.Command(bin, "-np", "4", "-workers", "2",
		"-prog", "chaos", "-kill-rank", "1",
		"-kill-after", "300ms", "-deadline", "20s").CombinedOutput()
	if err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out)
	}
	for _, survivor := range []string{"0", "2", "3"} {
		want := "chaos: rank " + survivor + " observed ErrRankFailed for rank 1"
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(string(out), "chaos complete") {
		t.Errorf("launcher did not report success:\n%s", out)
	}
}

// TestDistStealSmoke runs the uts-dist program across 4 real OS
// processes: the whole tree starts on rank 0, and every other rank must
// end the run having imported stolen tasks, with the global node count
// matching the sequential ground truth (verified in-process by rank 0).
func TestDistStealSmoke(t *testing.T) {
	bin := buildHcmpirun(t)
	out, err := exec.Command(bin, "-np", "4", "-workers", "2",
		"-prog", "uts-dist").CombinedOutput()
	if err != nil {
		t.Fatalf("uts-dist run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "uts-dist: T1Big complete") {
		t.Errorf("missing completion line:\n%s", out)
	}
	re := regexp.MustCompile(`uts-dist: rank (\d) nodes=\d+ migrated_in=(\d+)`)
	migrated := map[string]int{}
	for _, m := range re.FindAllStringSubmatch(string(out), -1) {
		n, _ := strconv.Atoi(m[2])
		migrated[m[1]] = n
	}
	for _, r := range []string{"0", "1", "2", "3"} {
		got, ok := migrated[r]
		if !ok {
			t.Errorf("no report line from rank %s:\n%s", r, out)
			continue
		}
		if r != "0" && got == 0 {
			t.Errorf("rank %s imported no stolen tasks:\n%s", r, out)
		}
	}
}

// TestDistChaosRankKill SIGKILLs the rank every other rank is stealing
// from and asserts each survivor's Scheduler.Run aborts with
// ErrRankFailed instead of hanging in the termination ring.
func TestDistChaosRankKill(t *testing.T) {
	bin := buildHcmpirun(t)
	out, err := exec.Command(bin, "-np", "4", "-workers", "2",
		"-prog", "dist-chaos", "-kill-rank", "1",
		"-kill-after", "500ms", "-deadline", "20s").CombinedOutput()
	if err != nil {
		t.Fatalf("dist-chaos run: %v\n%s", err, out)
	}
	for _, survivor := range []string{"0", "2", "3"} {
		want := "dist-chaos: rank " + survivor + " observed ErrRankFailed"
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(string(out), "dist-chaos complete") {
		t.Errorf("launcher did not report success:\n%s", out)
	}
}

// TestTraceExport runs a traced job and checks every rank wrote a
// non-empty Perfetto timeline.
func TestTraceExport(t *testing.T) {
	bin := buildHcmpirun(t)
	prefix := filepath.Join(t.TempDir(), "job")
	out, err := exec.Command(bin, "-np", "3", "-workers", "1", "-trace", prefix).CombinedOutput()
	if err != nil {
		t.Fatalf("traced run: %v\n%s", err, out)
	}
	for r := 0; r < 3; r++ {
		path := prefix + ".rank" + string(rune('0'+r)) + ".json"
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("rank %d timeline: %v\n%s", r, err, out)
		}
		if st.Size() == 0 {
			t.Errorf("rank %d timeline is empty", r)
		}
	}
}
