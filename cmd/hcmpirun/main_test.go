package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHcmpirun compiles the launcher once per test binary.
func buildHcmpirun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hcmpirun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeDistributed runs the demo program across 4 real OS
// processes: mesh bring-up, ring p2p, a collective, RMA, teardown.
func TestSmokeDistributed(t *testing.T) {
	bin := buildHcmpirun(t)
	out, err := exec.Command(bin, "-np", "4", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("demo run: %v\n%s", err, out)
	}
	for _, want := range []string{"allreduce over 4 processes: 10",
		"one-sided puts verified on every process", "job complete"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestChaosRankKill SIGKILLs one rank of a live job mid-collective and
// asserts every survivor observes ErrRankFailed within the deadline —
// the transport's fail-stop contract across real processes.
func TestChaosRankKill(t *testing.T) {
	bin := buildHcmpirun(t)
	out, err := exec.Command(bin, "-np", "4", "-workers", "2",
		"-prog", "chaos", "-kill-rank", "1",
		"-kill-after", "300ms", "-deadline", "20s").CombinedOutput()
	if err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out)
	}
	for _, survivor := range []string{"0", "2", "3"} {
		want := "chaos: rank " + survivor + " observed ErrRankFailed for rank 1"
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(string(out), "chaos complete") {
		t.Errorf("launcher did not report success:\n%s", out)
	}
}

// TestTraceExport runs a traced job and checks every rank wrote a
// non-empty Perfetto timeline.
func TestTraceExport(t *testing.T) {
	bin := buildHcmpirun(t)
	prefix := filepath.Join(t.TempDir(), "job")
	out, err := exec.Command(bin, "-np", "3", "-workers", "1", "-trace", prefix).CombinedOutput()
	if err != nil {
		t.Fatalf("traced run: %v\n%s", err, out)
	}
	for r := 0; r < 3; r++ {
		path := prefix + ".rank" + string(rune('0'+r)) + ".json"
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("rank %d timeline: %v\n%s", r, err, out)
		}
		if st.Size() == 0 {
			t.Errorf("rank %d timeline is empty", r)
		}
	}
}
