// Command hcmpirun is this library's mpirun: it launches a real
// multi-process HCMPI job over TCP on the local machine. With no -rank
// flag it allocates ports, spawns one child process per rank (re-executing
// itself), and waits; each child joins the mesh and runs the selected
// program.
//
//	go run ./cmd/hcmpirun -np 4 -workers 2
//	go run ./cmd/hcmpirun -np 4 -trace /tmp/job      # per-rank Perfetto timelines
//	go run ./cmd/hcmpirun -np 4 -prog chaos -kill-rank 1
//	go run ./cmd/hcmpirun -np 4 -prog uts-dist       # distributed-scheduler steal smoke
//
// Programs (the table in progs.go; -prog selects one):
//
//   - demo (default): ring p2p, a collective, one-sided puts — the
//     identical HCMPI surface, communication worker included, across OS
//     processes rather than goroutine ranks.
//   - chaos: the launcher SIGKILLs -kill-rank after -kill-after while the
//     survivors sit in a collective that includes the victim; every
//     survivor must observe ErrRankFailed within -deadline and exit
//     cleanly. Exercises the transport's fail-stop contract end to end.
//   - uts-dist: Unbalanced Tree Search seeded entirely on rank 0 and
//     rebalanced by the runtime's distributed work-stealing scheduler;
//     each rank reports its migrated-in task count and rank 0 verifies
//     the global node count against the sequential ground truth.
//   - dist-chaos: chaos for the distributed scheduler — the victim rank
//     serves steals from a long task queue when the kill lands, and every
//     survivor's Scheduler.Run must abort with ErrRankFailed.
//
// With -trace PREFIX each rank records a runtime timeline and writes
// PREFIX.rank<N>.json at exit (graceful drain: the mesh teardown flushes
// outbound queues before the file is written). Open the files in
// Perfetto (ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"hcmpi"
)

func main() {
	np := flag.Int("np", 3, "number of ranks (processes)")
	workers := flag.Int("workers", 2, "computation workers per rank")
	prog := flag.String("prog", "demo", "program to run: "+progNames())
	tracePrefix := flag.String("trace", "", "write per-rank Perfetto timelines to PREFIX.rank<N>.json")
	killRank := flag.Int("kill-rank", 1, "chaos programs: rank the launcher SIGKILLs")
	killAfter := flag.Duration("kill-after", 500*time.Millisecond, "chaos programs: delay before the kill")
	deadline := flag.Duration("deadline", 10*time.Second, "chaos programs: survivors must observe the failure within this window")
	rank := flag.Int("rank", -1, "internal: this process's rank")
	addrs := flag.String("addrs", "", "internal: comma-separated mesh addresses")
	flag.Parse()

	p, ok := programs[*prog]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -prog %q (want one of: %s)\n", *prog, progNames())
		os.Exit(2)
	}
	if p.killsRank && (*killRank < 0 || *killRank >= *np) {
		fmt.Fprintf(os.Stderr, "-kill-rank %d outside job of %d ranks\n", *killRank, *np)
		os.Exit(2)
	}
	if *rank < 0 {
		launch(*np, *workers, *prog, p, *tracePrefix, *killRank, *killAfter, *deadline)
		return
	}

	body := p.body(progOpts{np: *np, killRank: *killRank, deadline: *deadline})
	cfg := hcmpi.Config{Workers: *workers}
	if *tracePrefix != "" {
		cfg.Tracer = hcmpi.NewTracer()
	}
	err := hcmpi.RunDistributedConfig(*rank, strings.Split(*addrs, ","), cfg, body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
	if cfg.Tracer != nil {
		path := fmt.Sprintf("%s.rank%d.json", *tracePrefix, *rank)
		if err := cfg.Tracer.WriteChromeFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: trace: %v\n", *rank, err)
			os.Exit(1)
		}
		fmt.Printf("rank %d: timeline written to %s\n", *rank, path)
	}
}

// launch allocates ports, spawns np children, and waits for them. For a
// killsRank program it SIGKILLs killRank after killAfter and expects
// every survivor to exit cleanly anyway.
func launch(np, workers int, progName string, p program, tracePrefix string, killRank int, killAfter, deadline time.Duration) {
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("launching %d processes, %d workers each (prog=%s)\n", np, workers, progName)
	procs := make([]*exec.Cmd, np)
	for r := 0; r < np; r++ {
		cmd := exec.Command(self,
			"-rank", fmt.Sprint(r),
			"-addrs", strings.Join(addrs, ","),
			"-workers", fmt.Sprint(workers),
			"-prog", progName,
			"-trace", tracePrefix,
			"-kill-rank", fmt.Sprint(killRank),
			"-deadline", deadline.String())
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		procs[r] = cmd
	}
	if p.killsRank {
		time.Sleep(killAfter)
		fmt.Printf("%s: killing rank %d (pid %d)\n", progName, killRank, procs[killRank].Process.Pid)
		if err := procs[killRank].Process.Kill(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: kill: %v\n", progName, err)
		}
	}
	fail := false
	for r, proc := range procs {
		err := proc.Wait()
		if p.killsRank && r == killRank {
			if err == nil {
				fmt.Fprintf(os.Stderr, "%s: victim exited cleanly before the kill landed\n", progName)
				fail = true
			}
			continue // killed by us: expected
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rank %d exited: %v\n", r, err)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	if p.killsRank {
		fmt.Printf("%s complete: all survivors observed the rank failure\n", progName)
	} else {
		fmt.Println("job complete")
	}
}
