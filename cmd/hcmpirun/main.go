// Command hcmpirun is this library's mpirun: it launches a real
// multi-process HCMPI job over TCP on the local machine. With no -rank
// flag it allocates ports, spawns one child process per rank (re-executing
// itself), and waits; each child joins the mesh and runs the selected
// program.
//
//	go run ./cmd/hcmpirun -np 4 -workers 2
//	go run ./cmd/hcmpirun -np 4 -trace /tmp/job      # per-rank Perfetto timelines
//	go run ./cmd/hcmpirun -np 4 -prog chaos -kill-rank 1
//
// Programs:
//
//   - demo (default): ring p2p, a collective, one-sided puts — the
//     identical HCMPI surface, communication worker included, across OS
//     processes rather than goroutine ranks.
//   - chaos: the launcher SIGKILLs -kill-rank after -kill-after while the
//     survivors sit in a collective that includes the victim; every
//     survivor must observe ErrRankFailed within -deadline and exit
//     cleanly. Exercises the transport's fail-stop contract end to end.
//
// With -trace PREFIX each rank records a runtime timeline and writes
// PREFIX.rank<N>.json at exit (graceful drain: the mesh teardown flushes
// outbound queues before the file is written). Open the files in
// Perfetto (ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"hcmpi"
)

func main() {
	np := flag.Int("np", 3, "number of ranks (processes)")
	workers := flag.Int("workers", 2, "computation workers per rank")
	prog := flag.String("prog", "demo", "program to run: demo or chaos")
	tracePrefix := flag.String("trace", "", "write per-rank Perfetto timelines to PREFIX.rank<N>.json")
	killRank := flag.Int("kill-rank", 1, "chaos: rank the launcher SIGKILLs")
	killAfter := flag.Duration("kill-after", 500*time.Millisecond, "chaos: delay before the kill")
	deadline := flag.Duration("deadline", 10*time.Second, "chaos: survivors must observe the failure within this window")
	rank := flag.Int("rank", -1, "internal: this process's rank")
	addrs := flag.String("addrs", "", "internal: comma-separated mesh addresses")
	flag.Parse()

	if *prog != "demo" && *prog != "chaos" {
		fmt.Fprintf(os.Stderr, "unknown -prog %q (want demo or chaos)\n", *prog)
		os.Exit(2)
	}
	if *rank < 0 {
		launch(*np, *workers, *prog, *tracePrefix, *killRank, *killAfter, *deadline)
		return
	}

	body := demo
	if *prog == "chaos" {
		if *killRank < 0 || *killRank >= *np {
			fmt.Fprintf(os.Stderr, "-kill-rank %d outside job of %d ranks\n", *killRank, *np)
			os.Exit(2)
		}
		body = chaosProg(*killRank, *deadline)
	}
	cfg := hcmpi.Config{Workers: *workers}
	if *tracePrefix != "" {
		cfg.Tracer = hcmpi.NewTracer()
	}
	err := hcmpi.RunDistributedConfig(*rank, strings.Split(*addrs, ","), cfg, body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
	if cfg.Tracer != nil {
		path := fmt.Sprintf("%s.rank%d.json", *tracePrefix, *rank)
		if err := cfg.Tracer.WriteChromeFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: trace: %v\n", *rank, err)
			os.Exit(1)
		}
		fmt.Printf("rank %d: timeline written to %s\n", *rank, path)
	}
}

// launch allocates ports, spawns np children, and waits for them. In
// chaos mode it SIGKILLs killRank after killAfter and expects every
// survivor to exit cleanly anyway.
func launch(np, workers int, prog, tracePrefix string, killRank int, killAfter, deadline time.Duration) {
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("launching %d processes, %d workers each (prog=%s)\n", np, workers, prog)
	procs := make([]*exec.Cmd, np)
	for r := 0; r < np; r++ {
		cmd := exec.Command(self,
			"-rank", fmt.Sprint(r),
			"-addrs", strings.Join(addrs, ","),
			"-workers", fmt.Sprint(workers),
			"-prog", prog,
			"-trace", tracePrefix,
			"-kill-rank", fmt.Sprint(killRank),
			"-deadline", deadline.String())
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		procs[r] = cmd
	}
	if prog == "chaos" {
		time.Sleep(killAfter)
		fmt.Printf("chaos: killing rank %d (pid %d)\n", killRank, procs[killRank].Process.Pid)
		if err := procs[killRank].Process.Kill(); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: kill: %v\n", err)
		}
	}
	fail := false
	for r, p := range procs {
		err := p.Wait()
		if prog == "chaos" && r == killRank {
			if err == nil {
				fmt.Fprintln(os.Stderr, "chaos: victim exited cleanly before the kill landed")
				fail = true
			}
			continue // killed by us: expected
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rank %d exited: %v\n", r, err)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	if prog == "chaos" {
		fmt.Println("chaos complete: all survivors observed the rank failure")
	} else {
		fmt.Println("job complete")
	}
}

// demo: ring p2p, a collective, and one-sided puts — across processes.
func demo(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	me, p := n.Rank(), n.Size()

	// Ring exchange.
	next, prev := (me+1)%p, (me+p-1)%p
	req := n.IrecvBytes(prev, 1)
	n.Isend([]byte(fmt.Sprintf("hello from pid %d rank %d", os.Getpid(), me)), next, 1)
	st := n.Wait(ctx, req)
	fmt.Printf("rank %d (pid %d) received: %q\n", me, os.Getpid(), st.Payload)

	// Allreduce across processes.
	sum := n.Allreduce(ctx, encode(int64(me+1)), hcmpi.Int64, hcmpi.OpSum)
	if me == 0 {
		fmt.Printf("allreduce over %d processes: %d\n", p, decode(sum))
	}

	// One-sided puts into every peer's window.
	buf := make([]byte, p)
	win := n.WinCreate(ctx, buf)
	for t := 0; t < p; t++ {
		win.Put([]byte{byte(me + 1)}, t, me)
	}
	win.Fence(ctx)
	for r := 0; r < p; r++ {
		if buf[r] != byte(r+1) {
			fmt.Fprintf(os.Stderr, "rank %d: RMA slot %d = %d\n", me, r, buf[r])
			os.Exit(1)
		}
	}
	if me == 0 {
		fmt.Println("one-sided puts verified on every process")
	}
}

// chaosProg builds the fail-stop exercise: after a warm-up collective
// the victim leaves the collective schedule and waits for the
// launcher's SIGKILL, while the survivors enter a barrier that still
// includes it. That barrier can only complete through the failure
// path, after which each survivor asserts that operations against the
// dead rank fail fast with ErrRankFailed.
func chaosProg(victim int, deadline time.Duration) func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	return func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		me := n.Rank()
		n.Barrier(ctx) // everyone up, mesh fully connected
		if me == victim {
			fmt.Printf("chaos: victim rank %d (pid %d) awaiting kill\n", me, os.Getpid())
			select {} // hold the rank open until SIGKILL
		}
		watchdog := time.AfterFunc(deadline, func() {
			fmt.Fprintf(os.Stderr, "chaos: rank %d: deadline %v expired without observing the failure\n", me, deadline)
			os.Exit(3)
		})
		defer watchdog.Stop()

		// Mid-collective when the kill lands: the victim never joins, so
		// this unblocks only once the transport declares it failed.
		n.Barrier(ctx)

		st := n.Wait(ctx, n.Isend([]byte{1}, victim, 9))
		if st.Err != hcmpi.ErrRankFailed {
			fmt.Fprintf(os.Stderr, "chaos: rank %d: send to dead rank returned %v, want ErrRankFailed\n", me, st.Err)
			os.Exit(4)
		}
		fmt.Printf("chaos: rank %d observed ErrRankFailed for rank %d\n", me, victim)
	}
}

func encode(x int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func decode(b []byte) int64 {
	var x int64
	for i := 0; i < 8; i++ {
		x |= int64(b[i]) << (8 * i)
	}
	return x
}
