// Command hcmpirun is this library's mpirun: it launches a real
// multi-process HCMPI job over TCP on the local machine. With no -rank
// flag it allocates ports, spawns one child process per rank (re-executing
// itself), and waits; each child joins the mesh and runs a demonstration
// program (ring exchange, allreduce, one-sided puts).
//
//	go run ./cmd/hcmpirun -np 4 -workers 2
//
// The point: the identical HCMPI programming surface — communication
// worker included — runs across OS processes, not just goroutine ranks.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"

	"hcmpi"
)

func main() {
	np := flag.Int("np", 3, "number of ranks (processes)")
	workers := flag.Int("workers", 2, "computation workers per rank")
	rank := flag.Int("rank", -1, "internal: this process's rank")
	addrs := flag.String("addrs", "", "internal: comma-separated mesh addresses")
	flag.Parse()

	if *rank < 0 {
		launch(*np, *workers)
		return
	}
	if err := hcmpi.RunDistributed(*rank, strings.Split(*addrs, ","), *workers, demo); err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

// launch allocates ports, spawns np children, and waits for them.
func launch(np, workers int) {
	addrs := make([]string, np)
	lns := make([]net.Listener, np)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("launching %d processes, %d workers each\n", np, workers)
	procs := make([]*exec.Cmd, np)
	for r := 0; r < np; r++ {
		cmd := exec.Command(self,
			"-rank", fmt.Sprint(r),
			"-addrs", strings.Join(addrs, ","),
			"-workers", fmt.Sprint(workers))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		procs[r] = cmd
	}
	fail := false
	for r, p := range procs {
		if err := p.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d exited: %v\n", r, err)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("job complete")
}

// demo: ring p2p, a collective, and one-sided puts — across processes.
func demo(n *hcmpi.Node, ctx *hcmpi.Ctx) {
	me, p := n.Rank(), n.Size()

	// Ring exchange.
	next, prev := (me+1)%p, (me+p-1)%p
	req := n.IrecvBytes(prev, 1)
	n.Isend([]byte(fmt.Sprintf("hello from pid %d rank %d", os.Getpid(), me)), next, 1)
	st := n.Wait(ctx, req)
	fmt.Printf("rank %d (pid %d) received: %q\n", me, os.Getpid(), st.Payload)

	// Allreduce across processes.
	sum := n.Allreduce(ctx, encode(int64(me+1)), hcmpi.Int64, hcmpi.OpSum)
	if me == 0 {
		fmt.Printf("allreduce over %d processes: %d\n", p, decode(sum))
	}

	// One-sided puts into every peer's window.
	buf := make([]byte, p)
	win := n.WinCreate(ctx, buf)
	for t := 0; t < p; t++ {
		win.Put([]byte{byte(me + 1)}, t, me)
	}
	win.Fence(ctx)
	for r := 0; r < p; r++ {
		if buf[r] != byte(r+1) {
			fmt.Fprintf(os.Stderr, "rank %d: RMA slot %d = %d\n", me, r, buf[r])
			os.Exit(1)
		}
	}
	if me == 0 {
		fmt.Println("one-sided puts verified on every process")
	}
}

func encode(x int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func decode(b []byte) int64 {
	var x int64
	for i := 0; i < 8; i++ {
		x |= int64(b[i]) << (8 * i)
	}
	return x
}
