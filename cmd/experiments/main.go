// Command experiments regenerates the paper's evaluation: every table and
// figure of §IV has a named runner in internal/harness whose output
// prints the measured values next to the published ones.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14
//	experiments -run all [-full]
//
// -full switches the UTS sweeps to paper-regime tree sizes and node
// counts (minutes instead of seconds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hcmpi/internal/harness"
)

func main() {
	run := flag.String("run", "", "experiment id (e.g. fig14, table2) or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	full := flag.Bool("full", false, "paper-regime workloads (slow)")
	outPath := flag.String("o", "", "also write output to this file")
	tracePath := flag.String("trace", "", "write a Perfetto timeline here (trace-enabled experiments)")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, n := range harness.Names() {
			fmt.Println("  " + n)
		}
		if *run == "" {
			fmt.Println("\nrun one with: experiments -run <id> (or -run all)")
		}
		return
	}

	o := harness.Options{Full: *full, TracePath: *tracePath}
	names := []string{*run}
	if *run == "all" {
		names = harness.Names()
	}
	for _, n := range names {
		t0 := time.Now()
		if err := harness.Run(n, o, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "  [%s took %v]\n", n, time.Since(t0).Round(time.Millisecond))
	}
}
