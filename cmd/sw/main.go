// Command sw runs the Smith-Waterman case study on the real runtime:
// the HCMPI DDDF wavefront or the MPI+OpenMP fork-join baseline.
//
//	sw -impl dddf   -ranks 3 -workers 2 -la 2000 -lb 2400 -oh 250 -ow 300
//	sw -impl hybrid -ranks 3 -workers 4 -la 2000 -lb 2400 -oh 250 -ow 300
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hcmpi/internal/dddf"
	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/sw"
)

func main() {
	impl := flag.String("impl", "dddf", "dddf | hybrid")
	ranks := flag.Int("ranks", 2, "MPI ranks")
	workers := flag.Int("workers", 2, "computation workers / threads per rank")
	la := flag.Int("la", 1200, "sequence A length")
	lb := flag.Int("lb", 1500, "sequence B length")
	oh := flag.Int("oh", 200, "outer tile height")
	ow := flag.Int("ow", 250, "outer tile width")
	ih := flag.Int("ih", 50, "inner tile height")
	iw := flag.Int("iw", 50, "inner tile width")
	seed := flag.Int64("seed", 42, "sequence seed")
	check := flag.Bool("check", true, "verify against the sequential reference")
	flag.Parse()

	cfg := sw.Config{LenA: *la, LenB: *lb, Seed: *seed,
		OuterH: *oh, OuterW: *ow, InnerH: *ih, InnerW: *iw}

	var want int32
	if *check {
		want = sw.SeqMax(sw.Config{LenA: *la, LenB: *lb, Seed: *seed})
	}

	var mu sync.Mutex
	var got int32
	start := time.Now()
	w := mpi.NewWorld(*ranks)
	w.Run(func(c *mpi.Comm) {
		switch *impl {
		case "dddf":
			dist := sw.DiagonalBlocks
			n := hcmpi.NewNode(c, hcmpi.Config{Workers: *workers})
			space := dddf.NewSpace(n, sw.HomeFunc(cfg, dist, *ranks), nil)
			n.Main(func(ctx *hc.Ctx) {
				r := sw.RunDDDF(space, ctx, cfg, dist)
				mu.Lock()
				got = r
				mu.Unlock()
			})
			n.Close()
		case "hybrid":
			r := sw.RunHybrid(c, cfg, *workers, sw.ColumnCyclic)
			mu.Lock()
			got = r
			mu.Unlock()
		default:
			fmt.Fprintf(os.Stderr, "unknown impl %q\n", *impl)
			os.Exit(2)
		}
	})
	elapsed := time.Since(start)

	fmt.Printf("impl=%s ranks=%d workers=%d matrix=%dx%d tiles=%dx%d\n",
		*impl, *ranks, *workers, *la, *lb, cfg.TilesH(), cfg.TilesW())
	fmt.Printf("max alignment score: %d (wall %v)\n", got, elapsed.Round(time.Microsecond))
	if *check {
		if got != want {
			fmt.Fprintf(os.Stderr, "ERROR: sequential reference is %d\n", want)
			os.Exit(1)
		}
		fmt.Println("verified against sequential reference")
	}
}
