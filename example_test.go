package hcmpi_test

import (
	"fmt"

	"hcmpi"
)

// The paper's Fig. 3 pattern: blocking semantics from a finish scope
// around a non-blocking receive.
func ExampleRun() {
	hcmpi.Run(2, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		switch n.Rank() {
		case 0:
			n.Isend([]byte("hi"), 1, 0) //hclint:allow fire-and-forget send: the eager transport copies at post; teardown reaps it
		case 1:
			buf := make([]byte, 2)
			ctx.Finish(func(ctx *hcmpi.Ctx) {
				req := n.Irecv(buf, 0, 0)
				ctx.AsyncAwait(func(*hcmpi.Ctx) {}, req.DDF())
				// ... overlapped computation here ...
			})
			// Irecv is complete after the finish.
			fmt.Printf("%s\n", buf)
		}
	})
	// Output: hi
}

// Dataflow with shared-memory DDFs: the await clause releases the task
// when all inputs are put.
func ExampleDDF() {
	hcmpi.Run(1, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		a, b := hcmpi.NewDDF(), hcmpi.NewDDF()
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			ctx.AsyncAwait(func(*hcmpi.Ctx) {
				fmt.Println(a.MustGet().(int) + b.MustGet().(int))
			}, a, b)
			ctx.Async(func(ctx *hcmpi.Ctx) { a.Put(ctx, 40) })
			ctx.Async(func(ctx *hcmpi.Ctx) { b.Put(ctx, 2) })
		})
	})
	// Output: 42
}

// A system-wide reduction at a phaser synchronization point (the paper's
// hcmpi-accum, Fig. 8).
func ExampleNode_AccumCreate() {
	hcmpi.Run(2, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		acc := n.AccumCreate(hcmpi.OpSum, hcmpi.Int64)
		reg := acc.Register(hcmpi.SignalWait)
		reg.AccumNext(int64(n.Rank() + 1)) // 1 + 2 across ranks
		if n.Rank() == 0 {
			fmt.Println(reg.Get().(int64))
		}
	})
	// Output: 3
}

// Distributed data-driven futures: rank 1 consumes a value homed on rank
// 0 with no explicit messaging (the APGNS model, Fig. 9).
func ExampleRunDDDF() {
	home := func(guid int64) int { return 0 }
	hcmpi.RunDDDF(2, hcmpi.Config{Workers: 1}, home, nil,
		func(s *hcmpi.DDDFSpace, ctx *hcmpi.Ctx) {
			h := s.Handle(7)
			if s.Node().Rank() == 0 {
				h.Put(ctx, []byte("dataflow"))
				return
			}
			done := make(chan struct{})
			ctx.Finish(func(ctx *hcmpi.Ctx) {
				s.AsyncAwait(ctx, func(*hcmpi.Ctx) {
					fmt.Printf("%s\n", h.MustGet())
					close(done)
				}, h)
			})
			<-done
		})
	// Output: dataflow
}
