// Benchmarks in two layers, mirroring the paper's evaluation:
//
//   - Library micro-benchmarks against the real runtime: task spawn and
//     join, DDF put/get and await lists, phaser phases, accumulator
//     reductions, communication-task round trips, DDDF fetches.
//
//   - One benchmark per paper table/figure, driving the discrete-event
//     models that regenerate the corresponding experiment (bandwidth,
//     message rate, latency, syncbench grid, UTS scaling/speedups and
//     profile, Smith-Waterman scaling and comparison). These report the
//     experiment's headline quantity as a custom metric so `go test
//     -bench` output doubles as a results table.
package hcmpi_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hcmpi"
	"hcmpi/internal/hc"
	hcmpinode "hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/sim/model"
	"hcmpi/internal/uts"
)

// --- real-runtime micro-benchmarks ---

func BenchmarkAsyncFinish(b *testing.B) {
	rt := hc.New(2)
	defer rt.Shutdown()
	b.ReportAllocs()
	rt.Root(func(ctx *hc.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Finish(func(ctx *hc.Ctx) {
				ctx.Async(func(*hc.Ctx) {})
			})
		}
	})
}

func BenchmarkAsyncFanout64(b *testing.B) {
	rt := hc.New(4)
	defer rt.Shutdown()
	rt.Root(func(ctx *hc.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Finish(func(ctx *hc.Ctx) {
				for j := 0; j < 64; j++ {
					ctx.Async(func(*hc.Ctx) {})
				}
			})
		}
	})
}

func BenchmarkDDFPutGet(b *testing.B) {
	rt := hc.New(1)
	defer rt.Shutdown()
	rt.Root(func(ctx *hc.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := hc.NewDDF()
			d.Put(ctx, i)
			if d.MustGet() != i {
				b.Fatal("bad value")
			}
		}
	})
}

func BenchmarkDDFAwaitAND3(b *testing.B) {
	rt := hc.New(2)
	defer rt.Shutdown()
	rt.Root(func(ctx *hc.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, y, z := hc.NewDDF(), hc.NewDDF(), hc.NewDDF()
			ctx.Finish(func(ctx *hc.Ctx) {
				ctx.AsyncAwait(func(*hc.Ctx) {}, x, y, z)
				x.Put(ctx, 1)
				y.Put(ctx, 2)
				z.Put(ctx, 3)
			})
		}
	})
}

func BenchmarkPhaserNext4Tasks(b *testing.B) {
	// 4 goroutine-backed tasks cycling phases.
	hcmpi.Run(1, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		ph := n.PhaserCreate(hcmpi.Strict)
		b.ResetTimer()
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			for t := 0; t < 4; t++ {
				hcmpi.AsyncPhased(ctx, ph, hcmpi.SignalWait, func(_ *hcmpi.Ctx, reg *hcmpi.PhaserReg) {
					for i := 0; i < b.N; i++ {
						reg.Next()
					}
				})
			}
		})
	})
}

func BenchmarkAccumulatorNext(b *testing.B) {
	hcmpi.Run(1, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		acc := n.AccumCreate(hcmpi.OpSum, hcmpi.Int64)
		reg := acc.Register(hcmpi.SignalWait)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.AccumNext(int64(1))
		}
	})
}

func BenchmarkCommTaskRoundTrip(b *testing.B) {
	// One Isend+Recv ping through the communication workers of two ranks.
	hcmpi.Run(2, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		buf := make([]byte, 8)
		if n.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Send(ctx, buf, 1, 0)
				n.Recv(ctx, buf, 1, 1)
			}
		} else {
			for i := 0; i < b.N; i++ {
				n.Recv(ctx, buf, 0, 0)
				n.Send(ctx, buf, 0, 1)
			}
		}
	})
}

func BenchmarkHCMPIBarrier2Ranks(b *testing.B) {
	hcmpi.Run(2, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		if n.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			n.Barrier(ctx)
		}
	})
}

func BenchmarkDDDFRemoteFetch(b *testing.B) {
	// Remote await: registration + data transfer, amortized over the
	// cached path (at-most-once transfer means iterations 2..N are local).
	home := func(guid int64) int { return 0 }
	hcmpi.RunDDDF(2, hcmpi.Config{Workers: 1}, home, nil, func(s *hcmpi.DDDFSpace, ctx *hcmpi.Ctx) {
		if s.Node().Rank() == 0 {
			for i := 0; i < b.N; i++ {
				s.Handle(int64(i)).Put(ctx, []byte{1, 2, 3, 4})
			}
			s.Node().Barrier(ctx)
			return
		}
		s.Node().Barrier(ctx)
		b.ResetTimer()
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			for i := 0; i < b.N; i++ {
				h := s.Handle(int64(i))
				s.AsyncAwait(ctx, func(*hcmpi.Ctx) { _ = h.MustGet() }, h)
			}
		})
	})
}

// --- per-table / per-figure experiment benchmarks (simulator) ---

// BenchmarkFig14Bandwidth reports the modelled 8-thread bandwidth gap.
func BenchmarkFig14Bandwidth(b *testing.B) {
	cm := model.DefaultCosts()
	var m, h float64
	for i := 0; i < b.N; i++ {
		m = model.ThreadBenchMPI(8, cm).BandwidthGbps
		h = model.ThreadBenchHCMPI(8, cm).BandwidthGbps
	}
	b.ReportMetric(m, "MPI-Gbps")
	b.ReportMetric(h, "HCMPI-Gbps")
}

// BenchmarkFig14MessageRate reports the 8-thread message-rate crossover.
func BenchmarkFig14MessageRate(b *testing.B) {
	cm := model.DefaultCosts()
	var m, h float64
	for i := 0; i < b.N; i++ {
		m = model.ThreadBenchMPI(8, cm).MsgRateM
		h = model.ThreadBenchHCMPI(8, cm).MsgRateM
	}
	b.ReportMetric(m, "MPI-Mmsgs/s")
	b.ReportMetric(h, "HCMPI-Mmsgs/s")
}

// BenchmarkFig14Latency reports 1024-byte latencies at 8 threads.
func BenchmarkFig14Latency(b *testing.B) {
	cm := model.DefaultCosts()
	var m, h float64
	for i := 0; i < b.N; i++ {
		m = model.ThreadBenchMPI(8, cm).LatencyUS[1024]
		h = model.ThreadBenchHCMPI(8, cm).LatencyUS[1024]
	}
	b.ReportMetric(m, "MPI-µs")
	b.ReportMetric(h, "HCMPI-µs")
}

// BenchmarkFig15MessageRate is Fig 14's rate test on the Gemini preset.
func BenchmarkFig15MessageRate(b *testing.B) {
	cm := model.GeminiCosts()
	var m, h float64
	for i := 0; i < b.N; i++ {
		m = model.ThreadBenchMPI(8, cm).MsgRateM
		h = model.ThreadBenchHCMPI(8, cm).MsgRateM
	}
	b.ReportMetric(m, "MPI-Mmsgs/s")
	b.ReportMetric(h, "HCMPI-Mmsgs/s")
}

// BenchmarkTable2Barrier reports the 16-node/8-core barrier costs.
func BenchmarkTable2Barrier(b *testing.B) {
	cm := model.DefaultCosts()
	var mpiUS, hcS, hcF float64
	for i := 0; i < b.N; i++ {
		mpiUS = model.SyncBench(model.SyncMPI, model.Barrier, 16, 8, cm)
		hcS = model.SyncBench(model.SyncHCMPIStrict, model.Barrier, 16, 8, cm)
		hcF = model.SyncBench(model.SyncHCMPIFuzzy, model.Barrier, 16, 8, cm)
	}
	b.ReportMetric(mpiUS, "MPI-µs")
	b.ReportMetric(hcS, "strict-µs")
	b.ReportMetric(hcF, "fuzzy-µs")
}

// BenchmarkTable2Reduction reports the 16-node/8-core reduction costs.
func BenchmarkTable2Reduction(b *testing.B) {
	cm := model.DefaultCosts()
	var mpiUS, acc float64
	for i := 0; i < b.N; i++ {
		mpiUS = model.SyncBench(model.SyncMPI, model.Reduction, 16, 8, cm)
		acc = model.SyncBench(model.SyncHCMPIFuzzy, model.Reduction, 16, 8, cm)
	}
	b.ReportMetric(mpiUS, "MPI-µs")
	b.ReportMetric(acc, "accum-µs")
}

func utsBenchParams() model.UTSParams { return model.DefaultUTSParams(uts.T1Med) }

// BenchmarkFig16UTSMPI reports UTS/MPI makespan at 8 nodes × 8 cores.
func BenchmarkFig16UTSMPI(b *testing.B) {
	up := utsBenchParams()
	var s time.Duration
	for i := 0; i < b.N; i++ {
		s = model.UTSRunMPI(8, 8, up).Makespan
	}
	b.ReportMetric(s.Seconds(), "sim-s")
}

// BenchmarkFig17UTSMPIT3 is Fig 16's T3 sibling.
func BenchmarkFig17UTSMPIT3(b *testing.B) {
	up := model.DefaultUTSParams(uts.T3Mid)
	var s time.Duration
	for i := 0; i < b.N; i++ {
		s = model.UTSRunMPI(8, 8, up).Makespan
	}
	b.ReportMetric(s.Seconds(), "sim-s")
}

// BenchmarkFig18UTSHCMPI reports UTS/HCMPI makespan at 8 nodes × 8 cores.
func BenchmarkFig18UTSHCMPI(b *testing.B) {
	up := utsBenchParams()
	var s time.Duration
	for i := 0; i < b.N; i++ {
		s = model.UTSRunHCMPI(8, 8, up).Makespan
	}
	b.ReportMetric(s.Seconds(), "sim-s")
}

// BenchmarkFig19UTSHCMPIT3 is Fig 18's T3 sibling.
func BenchmarkFig19UTSHCMPIT3(b *testing.B) {
	up := model.DefaultUTSParams(uts.T3Mid)
	var s time.Duration
	for i := 0; i < b.N; i++ {
		s = model.UTSRunHCMPI(8, 8, up).Makespan
	}
	b.ReportMetric(s.Seconds(), "sim-s")
}

// BenchmarkFig20Speedup reports the T1 HCMPI-over-MPI speedup in the
// starved regime (16 nodes × 16 cores).
func BenchmarkFig20Speedup(b *testing.B) {
	up := utsBenchParams()
	var sp float64
	for i := 0; i < b.N; i++ {
		m := model.UTSRunMPI(16, 16, up)
		h := model.UTSRunHCMPI(16, 16, up)
		sp = float64(m.Makespan) / float64(h.Makespan)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkFig21SpeedupT3 is Fig 20's T3 sibling (8×8: the mid-grid
// point of the figure, where the measured speedup is ~1.9).
func BenchmarkFig21SpeedupT3(b *testing.B) {
	up := model.DefaultUTSParams(uts.T3Mid)
	var sp float64
	for i := 0; i < b.N; i++ {
		m := model.UTSRunMPI(8, 8, up)
		h := model.UTSRunHCMPI(8, 8, up)
		sp = float64(m.Makespan) / float64(h.Makespan)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkTable3Profile reports the failed-steal gap at 16×16.
func BenchmarkTable3Profile(b *testing.B) {
	up := utsBenchParams()
	var mf, hf float64
	for i := 0; i < b.N; i++ {
		mf = float64(model.UTSRunMPI(16, 16, up).Fails)
		hf = float64(model.UTSRunHCMPI(16, 16, up).Fails)
	}
	b.ReportMetric(mf, "MPI-fails")
	b.ReportMetric(hf, "HCMPI-fails")
}

// BenchmarkFig22HybridSpeedup reports HCMPI over the hybrid at 16×16.
func BenchmarkFig22HybridSpeedup(b *testing.B) {
	up := utsBenchParams()
	var sp float64
	for i := 0; i < b.N; i++ {
		y := model.UTSRunHybrid(16, 16, up)
		h := model.UTSRunHCMPI(16, 16, up)
		sp = float64(y.Makespan) / float64(h.Makespan)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkTable4SW reports the Smith-Waterman DDDF makespan at the
// paper's 8-node/12-core corner (paper: 192.3s).
func BenchmarkTable4SW(b *testing.B) {
	sp := model.DefaultSWParams()
	var s time.Duration
	for i := 0; i < b.N; i++ {
		s = model.SWRunDDDF(8, 12, sp)
	}
	b.ReportMetric(s.Seconds(), "sim-s")
}

// BenchmarkFig25SWSpeedup reports hybrid-time/DDDF-time at 4 nodes × 12
// cores (paper: 1.60).
func BenchmarkFig25SWSpeedup(b *testing.B) {
	spD := model.Fig25SWParams()
	spH := spD
	spH.Cfg.OuterH, spH.Cfg.OuterW = 5800, 6000
	var sp float64
	for i := 0; i < b.N; i++ {
		d := model.SWRunDDDF(4, 12, spD)
		h := model.SWRunHybrid(4, 12, spH)
		sp = float64(h) / float64(d)
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkRealUTSHCMPI runs the real (non-simulated) runtime end to end
// on a small tree: 2 ranks × 2 workers, full steal and termination
// protocol per iteration.
func BenchmarkRealUTSHCMPI(b *testing.B) {
	want, _ := uts.T1Small.SeqCount()
	for i := 0; i < b.N; i++ {
		var total int64
		var mu sync.Mutex
		w := mpi.NewWorld(2)
		w.Run(func(c *mpi.Comm) {
			n := hcmpinode.NewNode(c, hcmpinode.Config{Workers: 2})
			ctr := uts.RunHCMPI(n, uts.T1Small, uts.Params{Chunk: 4, PollInterval: 8})
			mu.Lock()
			total += ctr.Nodes
			mu.Unlock()
			n.Close()
		})
		if total != want {
			b.Fatalf("nodes %d want %d", total, want)
		}
	}
}

// BenchmarkDistStealThroughput measures the distributed scheduler's
// migrate-execute pipeline: two netsim ranks, every frame seeded on
// rank 0, rank 1 feeding on steal-half grants. ns/op is the per-frame
// cost of the full protocol (request, harvest, grant, decode, execute,
// termination); migrated/op is the fraction of frames that crossed
// ranks.
func BenchmarkDistStealThroughput(b *testing.B) {
	var migrated int64
	var mu sync.Mutex
	hcmpi.Run(2, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		s := hcmpi.NewDistScheduler(n, hcmpi.DistConfig{})
		s.Register("spin", func(*hcmpi.DistTaskCtx, []byte) {
			acc := 1
			for i := 0; i < 512; i++ {
				acc = acc*31 + i
			}
			if acc == 42 {
				panic("unreachable")
			}
		})
		if n.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				s.Submit("spin", nil)
			}
			b.ResetTimer()
		}
		if err := s.Run(ctx); err != nil {
			b.Errorf("rank %d: %v", n.Rank(), err)
		}
		if n.Rank() == 1 {
			mu.Lock()
			migrated += s.Stats().MigratedIn
			mu.Unlock()
		}
	})
	b.ReportMetric(float64(migrated)/float64(b.N), "migrated/op")
}

// BenchmarkDistUTSImbalanced runs the acceptance workload — a geometric
// UTS tree seeded entirely on rank 0 — at 1 rank and at 4 ranks with the
// distributed scheduler rebalancing it, and reports the 4-rank-over-
// 1-rank wall-clock speedup. The ranks are in-process goroutines, so the
// speedup converges to min(4, GOMAXPROCS) as cores become available; on
// a single-core host it sits just below 1 (protocol overhead with no
// parallelism to pay for it).
func BenchmarkDistUTSImbalanced(b *testing.B) {
	want, _ := uts.T1Med.SeqCount()
	run := func(ranks int) time.Duration {
		var total int64
		var mu sync.Mutex
		start := time.Now()
		w := mpi.NewWorld(ranks)
		w.Run(func(c *mpi.Comm) {
			n := hcmpinode.NewNode(c, hcmpinode.Config{Workers: 1})
			ctr := uts.RunHCMPI(n, uts.T1Med, uts.DefaultParams)
			n.Close()
			mu.Lock()
			total += ctr.Nodes
			mu.Unlock()
		})
		elapsed := time.Since(start)
		if total != want {
			b.Fatalf("%d ranks: counted %d nodes, want %d", ranks, total, want)
		}
		return elapsed
	}
	var t1, t4 time.Duration
	for i := 0; i < b.N; i++ {
		t1 += run(1)
		t4 += run(4)
	}
	b.ReportMetric(t1.Seconds()/float64(b.N)*1e3, "ms-1rank")
	b.ReportMetric(t4.Seconds()/float64(b.N)*1e3, "ms-4rank")
	b.ReportMetric(float64(t1)/float64(t4), "speedup")
}

// BenchmarkTCPRoundTrip measures one Isend+Irecv ping-pong across the
// real TCP transport (a same-process two-rank loopback mesh; every
// message crosses actual sockets). This is the wire path's headline
// number: enqueue cost, writer coalescing, and pooled receive staging.
func BenchmarkTCPRoundTrip(b *testing.B) {
	addrs := make([]string, 2)
	{
		lns := make([]net.Listener, 2)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			lns[i] = ln
			addrs[i] = ln.Addr().String()
		}
		for _, ln := range lns {
			ln.Close()
		}
	}
	comms := make([]*mpi.Comm, 2)
	closers := make([]io.Closer, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, closer, err := mpi.Distributed(r, addrs)
			if err != nil {
				b.Error(err)
				return
			}
			comms[r], closers[r] = c, closer
		}(r)
	}
	wg.Wait()
	if b.Failed() {
		b.FailNow()
	}
	c0, c1 := comms[0], comms[1]
	msg := make([]byte, 64)
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c1.Irecv(buf, 0, 7)
		s := c0.Isend(msg, 1, 7)
		r.WaitStatus()
		s.WaitStatus()
		r.Free()
		s.Free()
	}
	b.StopTimer()
	for _, cl := range closers {
		cl.Close()
	}
}
