// Package hcmpi is a from-scratch Go reproduction of "Integrating
// Asynchronous Task Parallelism with MPI" (Chatterjee et al., IPDPS
// 2013): the HCMPI programming model and runtime, which unify
// Habanero-C-style intra-node task parallelism (async/finish, data-driven
// futures, phasers) with MPI-style inter-node message passing through a
// dedicated communication worker per rank.
//
// This root package is the stable public facade. The machinery lives in
// internal packages:
//
//	internal/hc     — work-stealing task runtime (async/finish/DDF/DDT)
//	internal/phaser — phasers and accumulators
//	internal/mpi    — the message-passing substrate (ranks simulated
//	                  in-process over a modelled interconnect)
//	internal/hcmpi  — the HCMPI integration: communication worker,
//	                  HCMPI_* API, hcmpi-phaser, hcmpi-accum
//	internal/dddf   — distributed data-driven futures (APGNS)
//	internal/sim    — the discrete-event simulator behind the paper's
//	                  evaluation (see DESIGN.md)
//
// # Quickstart
//
//	hcmpi.Run(2, 4, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
//	    if n.Rank() == 0 {
//	        n.Send(ctx, []byte("hello"), 1, 0)
//	    } else {
//	        buf := make([]byte, 8)
//	        st := n.Recv(ctx, buf, 0, 0)
//	        fmt.Printf("rank 1 got %q\n", buf[:st.Bytes])
//	    }
//	})
//
// See examples/ for dataflow (DDDF), reduction (hcmpi-accum), and
// wavefront programs.
package hcmpi

import (
	"time"

	"hcmpi/internal/dddf"
	"hcmpi/internal/distsched"
	"hcmpi/internal/hc"
	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/netsim"
	"hcmpi/internal/phaser"
	"hcmpi/internal/trace"
)

// Re-exported core types. The paper's C-style names map as:
// HCMPI_Request → *Request, HCMPI_Status → *Status, DDF_t → *DDF,
// async/finish → Ctx.Async / Ctx.Finish, async await → Ctx.AsyncAwait.
type (
	// Node is one HCMPI process: computation workers plus the dedicated
	// communication worker, bound to an MPI rank.
	Node = hcmpi.Node
	// Ctx is the execution context of a task (current worker + finish
	// scope).
	Ctx = hc.Ctx
	// Request is an HCMPI request handle (a DDF completed by the
	// communication worker).
	Request = hcmpi.Request
	// Status is an HCMPI completion status.
	Status = hcmpi.Status
	// DDF is a shared-memory data-driven future.
	DDF = hc.DDF
	// Phaser is the point-to-point/collective synchronization construct;
	// hcmpi-phasers couple it to inter-node MPI operations.
	Phaser = phaser.Phaser
	// PhaserMode is a registration capability (SignalWait &c).
	PhaserMode = phaser.Mode
	// PhaserReg is one task's registration on a phaser.
	PhaserReg = phaser.Reg
	// Win is a one-sided communication window (HCMPI_Win_create).
	Win = hcmpi.Win
	// DDDFSpace is the distributed data-driven future namespace.
	DDDFSpace = dddf.Space
	// DDDF is a handle on a distributed data-driven future.
	DDDF = dddf.Handle
	// NetworkParams models the interconnect (latency/bandwidth classes).
	NetworkParams = netsim.Params
	// Faults is a deterministic fault-injection schedule for the
	// interconnect: seeded per-link drop/duplication/delay-spike
	// probabilities and partition windows. Replay a failing chaos run by
	// reusing its seed.
	Faults = netsim.Faults
	// FaultPartition blackholes a link for a window of messages.
	FaultPartition = netsim.Partition
	// Datatype and Op type reductions (HCMPI_INT / HCMPI_SUM ...).
	Datatype = mpi.Datatype
	// Op is a reduction operator.
	Op = mpi.Op
	// Tracer records a runtime timeline (per-worker event rings); export
	// it with WriteChromeFile (Perfetto) or WriteReport (text summary).
	Tracer = trace.Tracer
	// Metrics is the unified named-counter registry; every Node exposes
	// one via Node.Metrics().
	Metrics = trace.Metrics
	// DistScheduler is the runtime-level distributed work-stealing
	// scheduler: register migratable task kinds, submit seeds, and Run
	// drives every rank to global termination (Safra's algorithm).
	DistScheduler = distsched.Scheduler
	// DistConfig parameterizes a DistScheduler (victim policy, steal
	// batch bound, steal retry timeout).
	DistConfig = distsched.Config
	// DistTaskCtx is the execution context handed to migratable task
	// handlers.
	DistTaskCtx = distsched.TaskCtx
	// DistStats is a point-in-time snapshot of one rank's distributed
	// scheduling counters.
	DistStats = distsched.Stats
	// DistPolicy chooses victim ranks for remote steals.
	DistPolicy = distsched.Policy
)

// Phaser registration modes and barrier flavours.
const (
	SignalWait = phaser.SignalWait
	SignalOnly = phaser.SignalOnly
	WaitOnly   = phaser.WaitOnly
)

// Barrier modes for PhaserCreate.
const (
	Strict = hcmpi.Strict
	Fuzzy  = hcmpi.Fuzzy
)

// Reduction operators and datatypes (HCMPI_SUM, HCMPI_INT, ...).
var (
	OpSum   = mpi.OpSum
	OpProd  = mpi.OpProd
	OpMin   = mpi.OpMin
	OpMax   = mpi.OpMax
	Int64   = mpi.Int64
	Float64 = mpi.Float64
	Byte    = mpi.Byte
)

// Matching wildcards.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Fault-plane sentinel errors, surfaced on Status.Err. A failed operation
// still completes its request DDF — awaiting tasks run and finish scopes
// drain — so programs observe faults as values, never as hangs.
var (
	// ErrTimeout: the operation overran Config.OpTimeout.
	ErrTimeout = mpi.ErrTimeout
	// ErrRankFailed: the peer rank crashed (fail-stop).
	ErrRankFailed = mpi.ErrRankFailed
	// ErrMessageDropped: the network dropped the message and the
	// communication worker's retry budget is exhausted.
	ErrMessageDropped = mpi.ErrMessageDropped
)

// NewDDF creates an empty shared-memory data-driven future (DDF_CREATE).
func NewDDF() *DDF { return hc.NewDDF() }

// NewTracer creates a tracer with default ring sizing; pass it through
// Config.Tracer to record a job timeline.
func NewTracer() *Tracer { return trace.New(trace.Config{}) }

// NewMetrics creates an empty counter registry — handy for aggregating
// several ranks' Node.Metrics() with Metrics.Merge.
func NewMetrics() *Metrics { return trace.NewMetrics() }

// NewDistScheduler attaches a distributed work-stealing scheduler to a
// node. Create it before Node.Main (it installs communication-worker
// listeners), then call Run from inside the main task on every rank.
func NewDistScheduler(n *Node, cfg DistConfig) *DistScheduler {
	return distsched.New(n, cfg)
}

// Victim-selection policies for DistConfig.Policy.
var (
	// DistRandomPolicy picks uniform random victims (the default).
	DistRandomPolicy = distsched.RandomPolicy
	// DistRoundRobinPolicy cycles deterministically through the peers.
	DistRoundRobinPolicy = distsched.RoundRobinPolicy
	// DistLoadGossipPolicy prefers the peer with the highest load
	// estimate gossiped on steal traffic.
	DistLoadGossipPolicy = distsched.LoadGossipPolicy
)

// AsyncPhased spawns a task registered on a phaser (async phased(ph)).
var AsyncPhased = hcmpi.AsyncPhased

// Config parameterizes an HCMPI job.
type Config struct {
	// Workers is the number of computation workers per rank (one extra
	// core per rank is the communication worker).
	Workers int
	// Net selects the modelled interconnect; zero value is a no-delay
	// loopback.
	Net NetworkParams
	// RanksPerNode places consecutive ranks on a common "node" for
	// intra- vs inter-node link classes (default 1).
	RanksPerNode int
	// Faults, when non-nil, installs a deterministic fault-injection
	// schedule on the interconnect (chaos testing). Zero-valued faults
	// inject nothing and cost nothing.
	Faults *Faults
	// OpTimeout bounds every communication operation: instead of
	// blocking forever under a partition or crashed rank, the operation
	// fails with ErrTimeout in its Status. 0 disables timeouts.
	OpTimeout time.Duration
	// SendRetries and RetryBackoff tune the communication worker's
	// retransmission of network-dropped sends (default 8 retries, 100µs
	// base backoff doubling per attempt).
	SendRetries  int
	RetryBackoff time.Duration
	// Tracer, when non-nil, records the job's timeline: every rank's
	// computation workers, communication worker, MPI endpoint, and the
	// interconnect fault plane. Nil disables tracing at (near) zero cost.
	Tracer *Tracer
}

// Run launches an SPMD HCMPI job of `ranks` ranks in-process, each with
// `workers` computation workers, runs body as every rank's main task,
// and tears the job down (global termination included). It is the
// moral equivalent of mpirun on this substrate.
func Run(ranks, workers int, body func(n *Node, ctx *Ctx)) {
	RunConfig(ranks, Config{Workers: workers}, body)
}

// RunConfig is Run with full control over the job configuration.
func RunConfig(ranks int, cfg Config, body func(n *Node, ctx *Ctx)) {
	w := mpi.NewWorld(ranks, cfg.worldOptions()...)
	w.Run(func(c *mpi.Comm) {
		n := hcmpi.NewNode(c, cfg.nodeConfig())
		n.Main(func(ctx *hc.Ctx) { body(n, ctx) })
		n.Close()
	})
}

func (cfg Config) worldOptions() []mpi.Option {
	opts := []mpi.Option{mpi.WithNetwork(cfg.Net)}
	if cfg.RanksPerNode > 0 {
		opts = append(opts, mpi.WithRanksPerNode(cfg.RanksPerNode))
	}
	if cfg.Faults != nil {
		opts = append(opts, mpi.WithFaults(*cfg.Faults))
	}
	if cfg.Tracer != nil {
		opts = append(opts, mpi.WithTracer(cfg.Tracer))
	}
	return opts
}

func (cfg Config) nodeConfig() hcmpi.Config {
	return hcmpi.Config{Workers: cfg.Workers, OpTimeout: cfg.OpTimeout,
		SendRetries: cfg.SendRetries, RetryBackoff: cfg.RetryBackoff,
		Tracer: cfg.Tracer}
}

// RunDistributed joins this OS process as one rank of a real multi-process
// HCMPI job over TCP: addrs[i] is rank i's listen address, identical
// across all processes. The call blocks until the mesh is up, runs body
// as this rank's main task, and tears everything down (including the
// global termination barrier). Everything available in-process — point to
// point, collectives, phasers, accumulators, RMA, DDDFs — works over the
// wire unchanged.
func RunDistributed(rank int, addrs []string, workers int, body func(n *Node, ctx *Ctx)) error {
	return RunDistributedConfig(rank, addrs, Config{Workers: workers}, body)
}

// RunDistributedConfig is RunDistributed with full control over the job
// configuration. The netsim-only knobs (Net, RanksPerNode, Faults) do
// not apply over TCP and are ignored; Tracer attaches the rank's MPI
// endpoint and worker tracks to a timeline the caller can export.
func RunDistributedConfig(rank int, addrs []string, cfg Config, body func(n *Node, ctx *Ctx)) error {
	var opts []mpi.DistOption
	if cfg.Tracer != nil {
		opts = append(opts, mpi.WithMeshTracer(cfg.Tracer))
	}
	c, closer, err := mpi.Distributed(rank, addrs, opts...)
	if err != nil {
		return err
	}
	n := hcmpi.NewNode(c, cfg.nodeConfig())
	n.Main(func(ctx *hc.Ctx) { body(n, ctx) })
	n.Close()
	return closer.Close()
}

// RunDDDF launches an SPMD job with a distributed data-driven future
// namespace (the APGNS model): home maps guids to ranks (DDF_HOME), size
// optionally validates put sizes (DDF_SIZE).
func RunDDDF(ranks int, cfg Config, home func(guid int64) int, size func(guid int64) int,
	body func(s *DDDFSpace, ctx *Ctx)) {
	w := mpi.NewWorld(ranks, cfg.worldOptions()...)
	w.Run(func(c *mpi.Comm) {
		n := hcmpi.NewNode(c, cfg.nodeConfig())
		var sz dddf.SizeFunc
		if size != nil {
			sz = size
		}
		s := dddf.NewSpace(n, home, sz)
		n.Main(func(ctx *hc.Ctx) { body(s, ctx) })
		n.Close()
	})
}
