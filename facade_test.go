package hcmpi_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"hcmpi"
)

// Tests of the public facade: everything a downstream user reaches for,
// exercised through the exported API only.

func TestFacadeRunSendRecv(t *testing.T) {
	var got atomic.Int32
	hcmpi.Run(2, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		switch n.Rank() {
		case 0:
			n.Send(ctx, []byte{77}, 1, 5)
		case 1:
			buf := make([]byte, 1)
			n.Recv(ctx, buf, 0, 5)
			got.Store(int32(buf[0]))
		}
	})
	if got.Load() != 77 {
		t.Fatalf("got %d", got.Load())
	}
}

func TestFacadeAwaitOnRequest(t *testing.T) {
	var ok atomic.Bool
	hcmpi.Run(2, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		if n.Rank() == 0 {
			n.Isend([]byte("x"), 1, 0) //hclint:allow fire-and-forget send: the eager transport copies at post; teardown reaps it
			return
		}
		buf := make([]byte, 1)
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			req := n.Irecv(buf, 0, 0)
			ctx.AsyncAwait(func(*hcmpi.Ctx) { ok.Store(buf[0] == 'x') }, req.DDF())
		})
	})
	if !ok.Load() {
		t.Fatal("await task did not observe the message")
	}
}

func TestFacadeDDF(t *testing.T) {
	hcmpi.Run(1, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		d := hcmpi.NewDDF()
		var sum atomic.Int64
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			ctx.AsyncAwait(func(*hcmpi.Ctx) { sum.Add(d.MustGet().(int64)) }, d)
			ctx.Async(func(ctx *hcmpi.Ctx) { d.Put(ctx, int64(21)) })
		})
		if sum.Load() != 21 {
			t.Errorf("sum = %d", sum.Load())
		}
	})
}

func TestFacadeCollectivesAndWildcards(t *testing.T) {
	hcmpi.Run(3, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		if hcmpi.AnySource != -1 || hcmpi.AnyTag != -1 {
			t.Error("wildcards changed")
		}
		res := n.Allreduce(ctx, encode64(int64(n.Rank())), hcmpi.Int64, hcmpi.OpMax)
		if decode64(res) != 2 {
			t.Errorf("max = %d", decode64(res))
		}
	})
}

func TestFacadePhaserAccum(t *testing.T) {
	hcmpi.Run(2, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		acc := n.AccumCreate(hcmpi.OpSum, hcmpi.Int64)
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			for i := 0; i < 3; i++ {
				hcmpi.AsyncPhased(ctx, acc, hcmpi.SignalWait, func(_ *hcmpi.Ctx, reg *hcmpi.PhaserReg) {
					reg.AccumNext(int64(10))
					if got := reg.Get().(int64); got != 60 { // 2 ranks × 3 tasks × 10
						t.Errorf("accum = %d", got)
					}
				})
			}
		})
	})
}

func TestFacadeRunDDDF(t *testing.T) {
	home := func(guid int64) int { return int(guid % 2) }
	var ok atomic.Bool
	hcmpi.RunDDDF(2, hcmpi.Config{Workers: 2}, home, nil, func(s *hcmpi.DDDFSpace, ctx *hcmpi.Ctx) {
		h := s.Handle(0) // home rank 0
		if s.Node().Rank() == 0 {
			h.Put(ctx, []byte("flow"))
			return
		}
		done := make(chan struct{})
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			s.AsyncAwait(ctx, func(*hcmpi.Ctx) {
				ok.Store(string(h.MustGet()) == "flow")
				close(done)
			}, h)
		})
		<-done
	})
	if !ok.Load() {
		t.Fatal("DDDF value not observed remotely")
	}
}

func TestFacadeRMA(t *testing.T) {
	hcmpi.Run(2, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		buf := make([]byte, 2)
		win := n.WinCreate(ctx, buf)
		win.Put([]byte{byte(n.Rank() + 1)}, 1-n.Rank(), 0) //hclint:allow RMA requests are epoch-completed by Win.Fence, not per-request Wait
		win.Fence(ctx)
		if buf[0] != byte(2-n.Rank()) {
			t.Errorf("rank %d buf %v", n.Rank(), buf)
		}
	})
}

func TestFacadeNetworkConfig(t *testing.T) {
	var ran atomic.Int32
	hcmpi.RunConfig(4, hcmpi.Config{
		Workers:      1,
		RanksPerNode: 2,
		Net:          hcmpi.NetworkParams{},
	}, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		n.Barrier(ctx)
		ran.Add(1)
	})
	if ran.Load() != 4 {
		t.Fatalf("ran %d ranks", ran.Load())
	}
}

func encode64(x int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func decode64(b []byte) int64 {
	var x int64
	for i := 0; i < 8; i++ {
		x |= int64(b[i]) << (8 * i)
	}
	return x
}

func TestFacadeRunDistributed(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	var got atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			err := hcmpi.RunDistributed(r, addrs, 1, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
				sum := n.Allreduce(ctx, encode64(int64(n.Rank()+1)), hcmpi.Int64, hcmpi.OpSum)
				got.Store(decode64(sum))
			})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	if got.Load() != 3 {
		t.Fatalf("distributed allreduce = %d", got.Load())
	}
}
