// Quickstart: the HCMPI model in one file.
//
// Two ranks run in-process (the library's mpirun equivalent). Each rank
// has computation workers plus a dedicated communication worker; all
// communication calls create asynchronous communication tasks, and the
// Habanero constructs — async, finish, await — synchronize with them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hcmpi"
)

func main() {
	hcmpi.Run(2, 2, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		// --- intra-node task parallelism: async / finish (paper Fig 1-2) ---
		sum := make([]int, 4)
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			for i := range sum {
				i := i
				ctx.Async(func(*hcmpi.Ctx) { sum[i] = i * i })
			}
		})
		// After finish, all child tasks are done.

		// --- point-to-point with await (paper Fig 3-5) ---
		switch n.Rank() {
		case 0:
			n.Isend([]byte("hello from rank 0"), 1, 42) //hclint:allow fire-and-forget control message: the eager transport copies at post and completes autonomously
		case 1:
			buf := make([]byte, 32)
			ctx.Finish(func(ctx *hcmpi.Ctx) {
				req := n.Irecv(buf, 0, 42)
				// A data-driven task keyed on the request handle: runs
				// when the message has arrived, without blocking any
				// worker.
				ctx.AsyncAwait(func(*hcmpi.Ctx) {
					st, _ := req.GetStatus()
					fmt.Printf("rank 1 received %q (%d bytes, tag %d)\n",
						buf[:st.Bytes], st.Bytes, st.Tag)
				}, req.DDF())
				// Meanwhile this rank keeps computing.
			})
		}

		// --- shared-memory dataflow: DDFs (paper §II-A) ---
		left, right := hcmpi.NewDDF(), hcmpi.NewDDF()
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			ctx.AsyncAwait(func(ctx *hcmpi.Ctx) {
				a := left.MustGet().(int)
				b := right.MustGet().(int)
				fmt.Printf("rank %d dataflow join: %d + %d = %d\n", n.Rank(), a, b, a+b)
			}, left, right)
			ctx.Async(func(ctx *hcmpi.Ctx) { left.Put(ctx, 3) })
			ctx.Async(func(ctx *hcmpi.Ctx) { right.Put(ctx, 4) })
		})

		// --- collectives through the communication worker ---
		n.Barrier(ctx)
		total := n.Allreduce(ctx, encode(int64(n.Rank()+1)), hcmpi.Int64, hcmpi.OpSum)
		fmt.Printf("rank %d: allreduce sum = %d\n", n.Rank(), decode(total))
	})
}

func encode(x int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func decode(b []byte) int64 {
	var x int64
	for i := 0; i < 8; i++ {
		x |= int64(b[i]) << (8 * i)
	}
	return x
}
