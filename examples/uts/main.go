// Unbalanced Tree Search with HCMPI — the paper's flagship strong-scaling
// case study (§IV-B). Three ranks run in-process, each with computation
// workers exploring the implicit tree from private stacks that overflow
// into shared work-stealing deques; the dedicated communication worker
// answers remote steal requests through a listener task and runs the
// termination protocol, so computation is never interrupted.
//
//	go run ./examples/uts
package main

import (
	"fmt"
	"sync"
	"time"

	"hcmpi/internal/hcmpi"
	"hcmpi/internal/mpi"
	"hcmpi/internal/uts"
)

func main() {
	const ranks = 3
	const workers = 2
	tree := uts.T1Med
	params := uts.Params{Chunk: 8, PollInterval: 4} // the paper's best HCMPI tuning

	seqNodes, seqDepth := tree.SeqCount()

	var mu sync.Mutex
	var total uts.Counters
	start := time.Now()
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		n := hcmpi.NewNode(c, hcmpi.Config{Workers: workers})
		ctr := uts.RunHCMPI(n, tree, params)
		mu.Lock()
		total.Add(ctr)
		mu.Unlock()
		n.Close()
	})
	elapsed := time.Since(start)

	fmt.Printf("tree %s: %d nodes, max depth %d\n", tree.Name, total.Nodes, total.MaxDepth)
	fmt.Printf("sequential reference: %d nodes, depth %d\n", seqNodes, seqDepth)
	fmt.Printf("intra-node steals: %d   global steals: %d (failed: %d)\n",
		total.LocalSteals, total.Steals, total.FailedSteals)
	fmt.Printf("wall time: %v across %d ranks x %d workers\n", elapsed, ranks, workers)
	if total.Nodes != seqNodes {
		panic("parallel search lost tree nodes")
	}
}
