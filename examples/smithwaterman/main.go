// Distributed Smith-Waterman with distributed data-driven futures — the
// paper's flagship DDDF example (Fig 9): a 2D wavefront where every tile
// awaits its top, left, and diagonal neighbours' edges, published as
// DDDFs with globally unique ids. No rank ever names a peer: DDF_HOME
// places data, the runtime moves it, and the frontier advances
// unstructured across ranks (Fig 23).
//
//	go run ./examples/smithwaterman
package main

import (
	"fmt"

	"hcmpi"
	"hcmpi/internal/sw"
)

const (
	ranks   = 3
	workers = 2
)

func main() {
	cfg := sw.Config{
		LenA: 600, LenB: 720, Seed: 7,
		OuterH: 100, OuterW: 120, // 6x6 distributed tiles
		InnerH: 25, InnerW: 30, // intra-node task granularity
	}
	dist := sw.DiagonalBlocks // the paper's band distribution
	home := sw.HomeFunc(cfg, dist, ranks)

	// Ground truth, computed sequentially.
	want := sw.SeqMax(sw.Config{LenA: cfg.LenA, LenB: cfg.LenB, Seed: cfg.Seed})

	hcmpi.RunDDDF(ranks, hcmpi.Config{Workers: workers}, home, nil,
		func(s *hcmpi.DDDFSpace, ctx *hcmpi.Ctx) {
			got := sw.RunDDDF(s, ctx, cfg, dist)
			if s.Node().Rank() == 0 {
				fmt.Printf("alignment max score: distributed=%d sequential=%d (tiles %dx%d over %d ranks)\n",
					got, want, cfg.TilesH(), cfg.TilesW(), ranks)
				if got != want {
					panic("distributed result does not match sequential reference")
				}
			}
		})
}
