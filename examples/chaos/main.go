// Chaos demonstrates the deterministic fault plane: the same program run
// under message loss (completes via comm-worker retries), under a network
// partition (fails fast with ErrTimeout instead of hanging), and with
// faults off (nothing changes). Re-running with the same -seed replays
// the exact fault schedule.
package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"hcmpi"
)

func main() {
	seed := flag.Uint64("seed", 0xC4A05, "fault schedule seed")
	drop := flag.Float64("drop", 0.15, "per-message drop probability")
	flag.Parse()

	fmt.Println("— clean run (zero faults) —")
	run(hcmpi.Config{Workers: 2})

	fmt.Printf("— lossy run (drop=%.2f seed=%#x) —\n", *drop, *seed)
	run(hcmpi.Config{Workers: 2, OpTimeout: 5 * time.Second,
		Faults: &hcmpi.Faults{Seed: *seed, DropProb: *drop}})

	fmt.Printf("— partitioned run (seed=%#x) —\n", *seed)
	run(hcmpi.Config{Workers: 2, OpTimeout: 50 * time.Millisecond,
		SendRetries: 1000, RetryBackoff: time.Millisecond,
		Faults: &hcmpi.Faults{Seed: *seed,
			Partitions: []hcmpi.FaultPartition{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}}})
}

func run(cfg hcmpi.Config) {
	const msgs = 30
	agg := hcmpi.NewMetrics() // job-wide counters, merged from every rank
	hcmpi.RunConfig(2, cfg, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		defer agg.Merge(n.Metrics())
		switch n.Rank() {
		case 0:
			var failed error
			for i := 0; i < msgs; i++ {
				st := n.Send(ctx, []byte(fmt.Sprintf("msg-%02d", i)), 1, 7)
				if st.Err != nil {
					failed = st.Err
					break
				}
			}
			s := n.StatsSnapshot()
			if failed != nil {
				kind := "other"
				switch {
				case errors.Is(failed, hcmpi.ErrTimeout):
					kind = "ErrTimeout"
				case errors.Is(failed, hcmpi.ErrRankFailed):
					kind = "ErrRankFailed"
				case errors.Is(failed, hcmpi.ErrMessageDropped):
					kind = "ErrMessageDropped"
				}
				fmt.Printf("  rank 0: send failed with %s after %d retries — no hang\n",
					kind, s.Retries)
				return
			}
			fmt.Printf("  rank 0: %d sends delivered (retries=%d timeouts=%d)\n",
				msgs, s.Retries, s.Timeouts)
		case 1:
			buf := make([]byte, 16)
			for i := 0; i < msgs; i++ {
				st := n.Recv(ctx, buf, 0, 7)
				if st.Err != nil {
					fmt.Printf("  rank 1: recv %d failed: %v — no hang\n", i, st.Err)
					return
				}
				if got, want := string(buf[:st.Bytes]), fmt.Sprintf("msg-%02d", i); got != want {
					fmt.Printf("  rank 1: ORDER VIOLATION at %d: %q\n", i, got)
					return
				}
			}
			fmt.Printf("  rank 1: %d messages received in order\n", msgs)
		}
	})
	fmt.Printf("  metrics: %s\n", agg.Summary())
}
