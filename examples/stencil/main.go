// 1D heat diffusion: the classic BSP stencil, written with the two HCMPI
// features the paper names as the unification's payoff — halo exchange
// through one-sided Puts into RMA windows (the paper's future-work
// HCMPI_Put), and an hcmpi-phaser as the system-wide iteration barrier,
// overlapping inter-node synchronization with the fuzzy mode. Intra-node
// parallelism comes from async/finish over row chunks.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"math"

	"hcmpi"
)

const (
	ranks   = 4
	workers = 2
	cells   = 400 // per rank
	steps   = 200
	alpha   = 0.25
)

func main() {
	hcmpi.Run(ranks, workers, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		// grid[1..cells] are my cells; grid[0] and grid[cells+1] are halo
		// slots that neighbours write into one-sidedly.
		grid := make([]float64, cells+2)
		next := make([]float64, cells+2)
		// A hot spike in the middle of the global domain.
		if n.Rank() == ranks/2 {
			grid[cells/2] = 1000
		}

		halo := make([]byte, 16) // [left-halo float64][right-halo float64]
		win := n.WinCreate(ctx, halo)
		ph := n.PhaserCreate(hcmpi.Fuzzy)
		reg := ph.Register(hcmpi.SignalWait)

		left, right := n.Rank()-1, n.Rank()+1
		for s := 0; s < steps; s++ {
			// Publish boundary cells into the neighbours' halos.
			if left >= 0 {
				win.Put(f64bytes(grid[1]), left, 8) //hclint:allow their right halo: RMA requests are epoch-completed by Win.Fence, not per-request Wait
			}
			if right < ranks {
				win.Put(f64bytes(grid[cells]), right, 0) //hclint:allow their left halo: RMA requests are epoch-completed by Win.Fence, not per-request Wait
			}
			win.Fence(ctx) // all puts of this step visible
			grid[0] = f64from(halo[0:8])
			grid[cells+1] = f64from(halo[8:16])
			// Insulated global boundaries: mirror the edge cells.
			if n.Rank() == 0 {
				grid[0] = grid[1]
			}
			if n.Rank() == ranks-1 {
				grid[cells+1] = grid[cells]
			}

			// Parallel interior update (async/finish over chunks).
			const chunkSz = 100
			ctx.Finish(func(ctx *hcmpi.Ctx) {
				for lo := 1; lo <= cells; lo += chunkSz {
					lo := lo
					hi := lo + chunkSz
					if hi > cells+1 {
						hi = cells + 1
					}
					ctx.Async(func(*hcmpi.Ctx) {
						for i := lo; i < hi; i++ {
							next[i] = grid[i] + alpha*(grid[i-1]-2*grid[i]+grid[i+1])
						}
					})
				}
			})
			grid, next = next, grid
			// System-wide step barrier: every task on every rank.
			reg.Next()
		}

		// Conservation check: total heat is invariant under diffusion
		// with insulated global boundaries.
		var local float64
		for i := 1; i <= cells; i++ {
			local += grid[i]
		}
		sum := n.Allreduce(ctx, f64bytes(local), hcmpi.Float64, hcmpi.OpSum)
		total := f64from(sum)
		if n.Rank() == 0 {
			fmt.Printf("after %d steps: total heat %.3f (expected 1000.000)\n", steps, total)
			if math.Abs(total-1000) > 1e-6 {
				panic("heat not conserved")
			}
		}
		reg.Drop()
	})
}

func f64bytes(v float64) []byte {
	b := make([]byte, 8)
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b
}

func f64from(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
