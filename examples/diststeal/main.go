// Distributed work stealing: the runtime's inter-rank load-balancing
// plane in one file.
//
// Three ranks run in-process. Rank 0 seeds a maximally imbalanced
// divide-and-conquer computation — a ternary tree of tasks, every root
// on rank 0 — and the distributed scheduler spreads it: idle ranks
// steal batches of migratable tasks over the MPI transport, and a
// Safra-style token ring proves global termination (no task left
// anywhere, counted exactly once).
//
//	go run ./examples/diststeal
package main

import (
	"fmt"
	"os"
	"sync"

	"hcmpi"
)

const (
	ranks   = 3
	workers = 2
	depth   = 8 // complete ternary task tree: (3^(depth+1)-1)/2 tasks
)

func main() {
	var mu sync.Mutex
	stats := make(map[int]hcmpi.DistStats)

	hcmpi.Run(ranks, workers, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		s := hcmpi.NewDistScheduler(n, hcmpi.DistConfig{
			Policy: hcmpi.DistLoadGossipPolicy(),
		})
		// A migratable task: one byte of payload (its depth), spawning
		// three children. Handlers must be registered identically on
		// every rank; payloads travel with the task when it is stolen.
		s.Register("node", func(tc *hcmpi.DistTaskCtx, payload []byte) {
			spin(1 << 16) // ~30µs of simulated work, enough to outlive a steal round trip
			if d := payload[0]; d > 0 {
				for i := 0; i < 3; i++ {
					tc.Spawn("node", []byte{d - 1})
				}
			}
		})
		if n.Rank() == 0 {
			s.Submit("node", []byte{depth}) // the whole tree on one rank
		}
		n.Barrier(ctx) // start line, so the imbalance is real
		if err := s.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", n.Rank(), err)
			os.Exit(1)
		}
		mu.Lock()
		stats[n.Rank()] = s.Stats()
		mu.Unlock()
	})

	want := int64(0)
	for i, pow := 0, int64(1); i <= depth; i, pow = i+1, pow*3 {
		want += pow
	}
	var total int64
	for r := 0; r < ranks; r++ {
		st := stats[r]
		total += st.Executed
		fmt.Printf("rank %d: executed=%d migrated_in=%d migrated_out=%d grants_in=%d denies_in=%d term_rounds=%d\n",
			r, st.Executed, st.MigratedIn, st.MigratedOut, st.GrantsIn, st.DeniesIn, st.TermRounds)
	}
	fmt.Printf("total executed %d of %d tasks, all seeded on rank 0\n", total, want)
	if total != want {
		fmt.Fprintln(os.Stderr, "task count mismatch: lost or duplicated work")
		os.Exit(1)
	}
}

// spin burns CPU so a task outlives a steal round trip.
func spin(n int) {
	acc := 1
	for i := 0; i < n; i++ {
		acc = acc*31 + i
	}
	if acc == 42 {
		panic("unreachable")
	}
}
