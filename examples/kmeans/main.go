// Distributed k-means: every rank owns a shard of points; each iteration
// assigns points to the nearest centroid with intra-node async/finish
// parallelism and combines partial sums with one HCMPI allreduce. The
// loop overlaps the allreduce with the next iteration's bookkeeping using
// the non-blocking IAllreduce plus await — the paper's latency-hiding
// pitch applied to an ordinary data-analytics kernel.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"math"
	"math/rand"

	"hcmpi"
)

const (
	ranks        = 3
	workers      = 2
	pointsPerRnk = 3000
	k            = 4
	dims         = 2
	iters        = 12
)

func main() {
	hcmpi.Run(ranks, workers, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		// Synthetic clustered points, deterministic per rank.
		rng := rand.New(rand.NewSource(int64(n.Rank()) + 7))
		points := make([][dims]float64, pointsPerRnk)
		for i := range points {
			c := i % k
			points[i][0] = float64(c*10) + rng.NormFloat64()
			points[i][1] = float64(c*-6) + rng.NormFloat64()
		}

		// Common initial centroids on every rank.
		cents := make([][dims]float64, k)
		for c := range cents {
			cents[c] = [dims]float64{float64(c * 8), float64(c * -5)}
		}

		for it := 0; it < iters; it++ {
			// Partial sums: k * (dims + 1) values (sums ++ count).
			const stride = dims + 1
			partial := make([]float64, k*stride)
			var chunks [workers * 2][]float64
			ctx.Finish(func(ctx *hcmpi.Ctx) {
				per := (pointsPerRnk + len(chunks) - 1) / len(chunks)
				for w := range chunks {
					w := w
					ctx.Async(func(*hcmpi.Ctx) {
						local := make([]float64, k*stride)
						lo, hi := w*per, (w+1)*per
						if hi > pointsPerRnk {
							hi = pointsPerRnk
						}
						for i := lo; i < hi; i++ {
							best, bd := 0, math.Inf(1)
							for c := range cents {
								d := sq(points[i][0]-cents[c][0]) + sq(points[i][1]-cents[c][1])
								if d < bd {
									best, bd = c, d
								}
							}
							local[best*stride] += points[i][0]
							local[best*stride+1] += points[i][1]
							local[best*stride+2]++
						}
						chunks[w] = local
					})
				}
			})
			for _, local := range chunks {
				for j, v := range local {
					partial[j] += v
				}
			}

			// Non-blocking global reduction, synchronized with await.
			req := n.IAllreduce(encodeF64s(partial), hcmpi.Float64, hcmpi.OpSum)
			st := n.Wait(ctx, req)
			global := decodeF64s(st.Payload)
			for c := 0; c < k; c++ {
				if cnt := global[c*stride+2]; cnt > 0 {
					cents[c][0] = global[c*stride] / cnt
					cents[c][1] = global[c*stride+1] / cnt
				}
			}
		}

		if n.Rank() == 0 {
			fmt.Println("converged centroids (expect near (10c, -6c)):")
			for c, ct := range cents {
				fmt.Printf("  cluster %d: (%6.2f, %6.2f)\n", c, ct[0], ct[1])
			}
		}
	})
}

func sq(x float64) float64 { return x * x }

func encodeF64s(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		u := math.Float64bits(x)
		for j := 0; j < 8; j++ {
			b[8*i+j] = byte(u >> (8 * j))
		}
	}
	return b
}

func decodeF64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		var u uint64
		for j := 0; j < 8; j++ {
			u |= uint64(b[8*i+j]) << (8 * j)
		}
		xs[i] = math.Float64frombits(u)
	}
	return xs
}
