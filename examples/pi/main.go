// Monte-Carlo π with hcmpi-accum: tasks on every rank contribute local
// hit counts to a phaser accumulator whose phase completion runs
// MPI_Allreduce through the communication worker (paper Fig 8). The
// computation repeats for several phases — each one an independent
// system-wide reduction over the same registrations, as phasers are
// designed to be reused.
//
//	go run ./examples/pi
package main

import (
	"fmt"
	"math/rand"

	"hcmpi"
)

const (
	ranks          = 4
	workersPerRank = 3
	tasksPerRank   = 6
	samplesPerTask = 200_000
	phases         = 3
)

func main() {
	hcmpi.Run(ranks, workersPerRank, func(n *hcmpi.Node, ctx *hcmpi.Ctx) {
		acc := n.AccumCreate(hcmpi.OpSum, hcmpi.Int64)
		ctx.Finish(func(ctx *hcmpi.Ctx) {
			for t := 0; t < tasksPerRank; t++ {
				t := t
				hcmpi.AsyncPhased(ctx, acc, hcmpi.SignalWait, func(_ *hcmpi.Ctx, reg *hcmpi.PhaserReg) {
					rng := rand.New(rand.NewSource(int64(n.Rank()*1000 + t)))
					for ph := 0; ph < phases; ph++ {
						var hits int64
						for s := 0; s < samplesPerTask; s++ {
							x, y := rng.Float64(), rng.Float64()
							if x*x+y*y <= 1 {
								hits++
							}
						}
						// accum_next: contribute and synchronize — the
						// value is globally reduced across every task on
						// every rank.
						reg.AccumNext(hits)
						if n.Rank() == 0 && t == 0 {
							global := reg.Get().(int64)
							est := 4 * float64(global) / float64(ranks*tasksPerRank*samplesPerTask)
							fmt.Printf("phase %d: global hits %d → π ≈ %.5f\n", ph, global, est)
						}
					}
				})
			}
		})
	})
}
