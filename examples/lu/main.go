// Distributed tiled LU factorization on DDDFs — the dense-linear-algebra
// dataflow DAG (getrf/trsm/gemm) expressed entirely as distributed
// data-driven futures over a 2D block-cyclic tile distribution. No rank
// names a peer; panels flow to consumers through the APGNS name space,
// and the result is bit-identical to the sequential tiled factorization.
//
//	go run ./examples/lu
package main

import (
	"fmt"

	"hcmpi"
	"hcmpi/internal/lu"
)

const (
	ranks   = 4
	workers = 2
)

func main() {
	cfg := lu.Config{N: 96, Tile: 12, Seed: 42}
	want := lu.Checksum(lu.SeqFactor(cfg))

	home := lu.HomeFunc(cfg, ranks, lu.Cyclic2D)
	hcmpi.RunDDDF(ranks, hcmpi.Config{Workers: workers}, home, nil,
		func(s *hcmpi.DDDFSpace, ctx *hcmpi.Ctx) {
			grid := lu.RunDDDF(s, ctx, cfg, lu.Cyclic2D)
			if s.Node().Rank() == 0 {
				got := lu.Checksum(grid)
				fmt.Printf("LU %dx%d in %dx%d tiles over %d ranks\n",
					cfg.N, cfg.N, cfg.Tiles(), cfg.Tiles(), ranks)
				fmt.Printf("checksum: distributed %.6f, sequential %.6f\n", got, want)
				if got != want {
					panic("distributed factorization diverged")
				}
				fmt.Println("bit-identical to the sequential tiled factorization")
			}
		})
}
